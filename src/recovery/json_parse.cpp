#include "recovery/json_parse.hpp"

#include <cctype>
#include <cstdlib>

namespace xres::recovery {

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw JsonParseError{"JSON value is not a bool"};
  return bool_;
}

double JsonValue::as_double() const {
  if (kind_ != Kind::kNumber) throw JsonParseError{"JSON value is not a number"};
  char* end = nullptr;
  const double v = std::strtod(scalar_.c_str(), &end);
  if (end == nullptr || *end != '\0') throw JsonParseError{"bad number: " + scalar_};
  return v;
}

std::uint64_t JsonValue::as_u64() const {
  if (kind_ != Kind::kNumber) throw JsonParseError{"JSON value is not a number"};
  if (!scalar_.empty() && scalar_[0] == '-') {
    throw JsonParseError{"negative value for u64 field: " + scalar_};
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(scalar_.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    throw JsonParseError{"bad unsigned integer: " + scalar_};
  }
  return static_cast<std::uint64_t>(v);
}

std::int64_t JsonValue::as_i64() const {
  if (kind_ != Kind::kNumber) throw JsonParseError{"JSON value is not a number"};
  char* end = nullptr;
  const long long v = std::strtoll(scalar_.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') throw JsonParseError{"bad integer: " + scalar_};
  return static_cast<std::int64_t>(v);
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw JsonParseError{"JSON value is not a string"};
  return scalar_;
}

const std::string& JsonValue::number_text() const {
  if (kind_ != Kind::kNumber) throw JsonParseError{"JSON value is not a number"};
  return scalar_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) throw JsonParseError{"JSON value is not an array"};
  return array_;
}

const std::vector<JsonMember>& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) throw JsonParseError{"JSON value is not an object"};
  return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const JsonMember& m : as_object()) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) throw JsonParseError{"missing JSON field: " + key};
  return *v;
}

/// Single-pass recursive-descent parser over a string_view.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_{text} {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError{what + " at offset " + std::to_string(pos_)};
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of JSON");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string{"expected '"} + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    if (depth_ > 64) fail("JSON nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kBool;
    v.bool_ = b;
    return v;
  }

  JsonValue parse_object() {
    ++depth_;
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return v;
    }
    for (;;) {
      skip_ws();
      JsonValue key = parse_string();
      skip_ws();
      expect(':');
      v.object_.emplace_back(std::move(key.scalar_), parse_value());
      skip_ws();
      const char next = peek();
      ++pos_;
      if (next == '}') break;
      if (next != ',') fail("expected ',' or '}' in object");
    }
    --depth_;
    return v;
  }

  JsonValue parse_array() {
    ++depth_;
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return v;
    }
    for (;;) {
      v.array_.push_back(parse_value());
      skip_ws();
      const char next = peek();
      ++pos_;
      if (next == ']') break;
      if (next != ',') fail("expected ',' or ']' in array");
    }
    --depth_;
    return v;
  }

  JsonValue parse_string() {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kString;
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The journal writer only escapes controls (< 0x20); encode the
          // code point as UTF-8 for completeness.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
    v.scalar_ = std::move(out);
    return v;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      eat_digits();
    }
    if (!digits) fail("bad number");
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.scalar_ = std::string{text_.substr(start, pos_ - start)};
    return v;
  }

  std::string_view text_;
  std::size_t pos_{0};
  int depth_{0};
};

JsonValue parse_json(std::string_view text) { return JsonParser{text}.parse_document(); }

}  // namespace xres::recovery
