#include "core/policy.hpp"

namespace xres {

std::string TechniquePolicy::name() const {
  switch (mode) {
    case Mode::kIdealBaseline: return "ideal-baseline";
    case Mode::kFixed: return to_string(fixed);
    case Mode::kSelection: return "resilience-selection";
  }
  return "?";
}

}  // namespace xres
