#pragma once

/// \file io.hpp
/// Deterministic I/O fault injection + per-path failure policy — the
/// harness's own failure model applied to itself (docs/ROBUSTNESS.md,
/// "Fault injection & I/O policy"). Every filesystem primitive the harness
/// uses (open/write/fsync/rename/close/unlink) is wrapped here so a seeded
/// fault plan can inject EIO, ENOSPC, short writes, fsync failures and hard
/// crash-points (immediate `_exit` at the Nth I/O op) into any run:
///
///     XRES_IO_FAULTS=seed:rate[:kinds]     # or: xres --io-faults ...
///
/// where `kinds` is a comma list of `eio`, `enospc`, `short`, `fsync`,
/// `all` (rate-based, decided per op from hash(seed, op index)), one-shots
/// `eio@N` / `enospc@N` / `short@N` / `fsync@N` (fire exactly once at op N),
/// `crash@N` (`_exit(kCrashExitCode)` at op N), and `trace` (log every op
/// to stderr). Decisions are pure functions of (seed, op index), so any
/// observed failure is replayable from the seed and the op index printed in
/// the injection trace.
///
/// Injection is off by default: each wrapper costs one relaxed atomic load
/// before delegating to the raw primitive, which keeps the hot loop
/// overhead unmeasurable (the perf gate runs with faults off).
///
/// The policy half of this header is what call sites build on:
///  * `retry_io` — bounded retry with exponential backoff for transient
///    errors (EIO, EINTR, EAGAIN) on critical artifacts. ENOSPC is never
///    retried: a full disk does not heal on a 2 ms backoff.
///  * `IoError` — carries errno so drivers can turn ENOSPC into the clean
///    resumable exit 75 (journal state intact) instead of a generic error.
///  * `warn_once_degraded` — best-effort paths (run ledger, perf.json
///    sidecar) warn once and carry on; run exit codes never change.

#include <cstdint>
#include <cstdio>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include <sys/types.h>

namespace xres::io {

/// Exit code used by an injected crash-point (`crash@N`). Distinct from the
/// real exit-code contract (0/1/2/75) so a crash-matrix driver can tell an
/// injected crash from an ordinary failure.
inline constexpr int kCrashExitCode = 86;

/// Rate-based fault kinds (bitmask values for FaultConfig::kinds).
enum FaultKind : unsigned {
  kFaultEio = 1U << 0,     ///< fail the op with EIO
  kFaultEnospc = 1U << 1,  ///< fail the op with ENOSPC
  kFaultShort = 1U << 2,   ///< write only half the bytes (writes; else EIO)
  kFaultFsync = 1U << 3,   ///< fail fsync with EIO (fsyncs; else EIO)
  kFaultAll = kFaultEio | kFaultEnospc | kFaultShort | kFaultFsync,
};

/// One scheduled single-shot fault: fire \p kind at op \p op exactly once.
struct FaultPoint {
  std::uint64_t op{0};  ///< 1-based op index
  unsigned kind{0};     ///< one FaultKind bit
};

/// A parsed fault plan. Default-constructed = nothing injected (but ops are
/// still counted while installed, which is how scripts size a crash-point
/// matrix: run once with `seed:0` and read the atexit stats line).
struct FaultConfig {
  std::uint64_t seed{0};
  double rate{0.0};               ///< per-op injection probability [0, 1]
  unsigned kinds{kFaultAll};      ///< FaultKind mask for rate-based faults
  std::uint64_t crash_at{0};      ///< `_exit(kCrashExitCode)` at this op (0 = off)
  std::vector<FaultPoint> one_shots;
  bool trace{false};              ///< log every wrapped op to stderr
};

/// Parse `seed:rate[:kinds]` (see file comment for the kinds grammar).
/// Throws CheckError with a one-line message on malformed specs.
[[nodiscard]] FaultConfig parse_fault_spec(const std::string& spec);

/// Install \p config process-wide and start counting ops. Not async-safe
/// versus in-flight wrapped ops: install before worker threads start (the
/// CLI does it first thing in main). Also registers an atexit hook that
/// prints `io-faults: ops=<N> injected=<M> seed=<S>` to stderr.
void install_faults(const FaultConfig& config);

/// Disarm injection (wrappers revert to raw passthrough).
void clear_faults();

/// True when a fault plan is installed (even a count-only `seed:0` one).
[[nodiscard]] bool faults_active();

/// Ops performed / faults injected since install_faults (0 when inactive).
[[nodiscard]] std::uint64_t ops_performed();
[[nodiscard]] std::uint64_t faults_injected();

/// The fault (a FaultKind bit, or 0) that \p config plans for op
/// \p op_index. Pure — this is the replay function behind the trace, and
/// what the determinism tests pin. `crash_at` is handled separately.
[[nodiscard]] unsigned planned_fault(const FaultConfig& config, std::uint64_t op_index);

/// Thrown by the hardened write paths when an I/O failure survives its
/// retry policy. Carries errno so drivers can special-case ENOSPC (clean
/// resumable exit 75) without string-matching messages.
class IoError : public std::runtime_error {
 public:
  IoError(const std::string& what, int error_code)
      : std::runtime_error{what}, error_code_{error_code} {}
  [[nodiscard]] int error_code() const { return error_code_; }
  [[nodiscard]] bool disk_full() const;  ///< ENOSPC (or EDQUOT)
 private:
  int error_code_;
};

// ---------------------------------------------------------------------------
// Wrapped primitives. Each counts one op while a plan is installed, consults
// the plan, and otherwise delegates to the raw call. All set errno on
// injected failures exactly as the real primitive would.

/// fopen(3). Injected failure: returns nullptr with errno EIO/ENOSPC.
[[nodiscard]] std::FILE* fopen(const char* path, const char* mode);

/// fwrite(3), flattened to (bytes, count 1). Injected short write: writes
/// the first half of \p size for real and returns that count (errno EIO) —
/// exactly the torn state a crashed writer leaves behind.
std::size_t fwrite(const void* data, std::size_t size, std::FILE* stream,
                   const char* path);

/// fflush(3) + fsync(2) (fdatasync semantics are not needed; artifacts are
/// small). Injected failure: returns false with errno EIO/ENOSPC *without*
/// syncing. Returns true on success.
[[nodiscard]] bool fsync_stream(std::FILE* stream, const char* path);

/// fclose(3). Injected failure: the stream is still closed (as POSIX
/// allows), but EOF is returned with errno EIO.
int fclose(std::FILE* stream, const char* path);

/// rename(2). Injected failure: returns -1 with errno EIO/ENOSPC, target
/// untouched.
int rename(const char* from, const char* to);

/// remove(3). Best-effort at every call site; injected failure returns -1
/// with errno EIO (callers ignore it by policy).
int remove(const char* path);

/// open(2). Injected failure: returns -1 with errno EIO/ENOSPC.
[[nodiscard]] int open_fd(const char* path, int flags, ::mode_t mode);

/// write(2). Injected short write: writes half for real, returns that.
::ssize_t write_fd(int fd, const void* data, std::size_t size, const char* path);

/// close(2). Injected failure: fd is closed, -1/EIO returned.
int close_fd(int fd, const char* path);

// ---------------------------------------------------------------------------
// Policy helpers.

/// Bounded retry with exponential backoff for critical-artifact writes.
/// Calls \p op up to \p attempts times; \p op returns true on success and
/// leaves errno set on failure. Transient errors (EIO, EINTR, EAGAIN) back
/// off (base_backoff_ms, doubling) and retry; ENOSPC/EDQUOT and any other
/// errno abort immediately. Returns true on success; on false, errno holds
/// the final error. \p what names the artifact in trace/debug logs.
struct RetryPolicy {
  int attempts{4};
  int base_backoff_ms{1};
};
bool retry_io(const char* what, const std::function<bool()>& op,
              const RetryPolicy& policy = {});

/// Warn-once degradation for best-effort artifacts: the first failure per
/// \p artifact key logs one warning (stderr via the logger); later failures
/// are silent. Never throws, never changes exit codes.
void warn_once_degraded(const std::string& artifact, const std::string& detail);

/// Test hook: forget which artifacts already warned.
void reset_degraded_warnings_for_tests();

}  // namespace xres::io
