#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace xres::obs {

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

MetricRegistry& MetricRegistry::global() {
  static MetricRegistry instance;
  return instance;
}

MetricId MetricRegistry::add(MetricKind kind, const std::string& name,
                             const std::string& help) {
  XRES_CHECK(!name.empty(), "metric needs a name");
  const std::lock_guard<std::mutex> lock{mutex_};
  for (const MetricDesc& m : metrics_) {
    XRES_CHECK(m.name != name, "duplicate metric: " + name);
  }
  const auto kind_index = static_cast<std::size_t>(kind);
  const MetricId id{kind, slots_[kind_index]};
  ++slots_[kind_index];
  metrics_.push_back(MetricDesc{name, help, id});
  return id;
}

MetricId MetricRegistry::counter(const std::string& name, const std::string& help) {
  return add(MetricKind::kCounter, name, help);
}

MetricId MetricRegistry::gauge(const std::string& name, const std::string& help) {
  return add(MetricKind::kGauge, name, help);
}

MetricId MetricRegistry::histogram(const std::string& name, const std::string& help) {
  return add(MetricKind::kHistogram, name, help);
}

std::vector<MetricDesc> MetricRegistry::descriptors() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return metrics_;
}

std::optional<MetricId> MetricRegistry::find(const std::string& name) const {
  const std::lock_guard<std::mutex> lock{mutex_};
  for (const MetricDesc& m : metrics_) {
    if (m.name == name) return m.id;
  }
  return std::nullopt;
}

std::uint32_t MetricRegistry::slots(MetricKind kind) const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return slots_[static_cast<std::size_t>(kind)];
}

std::size_t log2_bucket(double value) {
  if (!(value >= 1.0)) return 0;  // also catches NaN and negatives
  const int exponent = std::ilogb(value);  // floor(log2(value)) for finite v >= 1
  if (exponent >= static_cast<int>(HistogramData::kBuckets) - 1 ||
      exponent == FP_ILOGBNAN || !std::isfinite(value)) {
    return HistogramData::kBuckets - 1;
  }
  return static_cast<std::size_t>(exponent) + 1;
}

double log2_bucket_upper_edge(std::size_t index) {
  XRES_CHECK(index < HistogramData::kBuckets, "bucket index out of range");
  return std::ldexp(1.0, static_cast<int>(index));
}

MetricSet::MetricSet() {
  // Force the built-in catalog in before sizing: a set constructed before
  // any instrumented code ran must still hold every built-in id.
  (void)builtin_metrics();
  const MetricRegistry& registry = MetricRegistry::global();
  counters_.assign(registry.slots(MetricKind::kCounter), 0);
  gauges_.assign(registry.slots(MetricKind::kGauge), 0.0);
  histograms_.assign(registry.slots(MetricKind::kHistogram), HistogramData{});
}

void MetricSet::inc(MetricId id, std::uint64_t delta) {
  XRES_CHECK(id.kind() == MetricKind::kCounter && id.slot() < counters_.size(),
             "bad counter id");
  counters_[id.slot()] += delta;
}

void MetricSet::add(MetricId id, double delta) {
  XRES_CHECK(id.kind() == MetricKind::kGauge && id.slot() < gauges_.size(),
             "bad gauge id");
  gauges_[id.slot()] += delta;
}

void MetricSet::observe(MetricId id, double value) {
  XRES_CHECK(id.kind() == MetricKind::kHistogram && id.slot() < histograms_.size(),
             "bad histogram id");
  HistogramData& h = histograms_[id.slot()];
  if (h.count == 0) {
    h.min = value;
    h.max = value;
  } else {
    h.min = std::min(h.min, value);
    h.max = std::max(h.max, value);
  }
  ++h.count;
  h.sum += value;
  ++h.buckets[log2_bucket(value)];
}

std::uint64_t MetricSet::counter(MetricId id) const {
  XRES_CHECK(id.kind() == MetricKind::kCounter && id.slot() < counters_.size(),
             "bad counter id");
  return counters_[id.slot()];
}

double MetricSet::gauge(MetricId id) const {
  XRES_CHECK(id.kind() == MetricKind::kGauge && id.slot() < gauges_.size(),
             "bad gauge id");
  return gauges_[id.slot()];
}

const HistogramData& MetricSet::histogram(MetricId id) const {
  XRES_CHECK(id.kind() == MetricKind::kHistogram && id.slot() < histograms_.size(),
             "bad histogram id");
  return histograms_[id.slot()];
}

void MetricSet::set_counter(MetricId id, std::uint64_t value) {
  XRES_CHECK(id.kind() == MetricKind::kCounter && id.slot() < counters_.size(),
             "bad counter id");
  counters_[id.slot()] = value;
}

void MetricSet::set_gauge(MetricId id, double value) {
  XRES_CHECK(id.kind() == MetricKind::kGauge && id.slot() < gauges_.size(),
             "bad gauge id");
  gauges_[id.slot()] = value;
}

void MetricSet::restore_histogram(MetricId id, const HistogramData& data) {
  XRES_CHECK(id.kind() == MetricKind::kHistogram && id.slot() < histograms_.size(),
             "bad histogram id");
  histograms_[id.slot()] = data;
}

void MetricSet::merge(const MetricSet& other) {
  XRES_CHECK(counters_.size() == other.counters_.size() &&
                 gauges_.size() == other.gauges_.size() &&
                 histograms_.size() == other.histograms_.size(),
             "merging metric sets from different registry generations");
  for (std::size_t i = 0; i < counters_.size(); ++i) counters_[i] += other.counters_[i];
  for (std::size_t i = 0; i < gauges_.size(); ++i) gauges_[i] += other.gauges_[i];
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    HistogramData& h = histograms_[i];
    const HistogramData& o = other.histograms_[i];
    if (o.count == 0) continue;
    if (h.count == 0) {
      h.min = o.min;
      h.max = o.max;
    } else {
      h.min = std::min(h.min, o.min);
      h.max = std::max(h.max, o.max);
    }
    h.count += o.count;
    h.sum += o.sum;
    for (std::size_t b = 0; b < HistogramData::kBuckets; ++b) h.buckets[b] += o.buckets[b];
  }
}

std::string MetricSet::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("xres-metrics-v1");
  const std::vector<MetricDesc> descs = MetricRegistry::global().descriptors();

  w.key("counters").begin_object();
  for (const MetricDesc& d : descs) {
    if (d.id.kind() != MetricKind::kCounter || d.id.slot() >= counters_.size()) continue;
    w.key(d.name).value(counters_[d.id.slot()]);
  }
  w.end_object();

  w.key("gauges").begin_object();
  for (const MetricDesc& d : descs) {
    if (d.id.kind() != MetricKind::kGauge || d.id.slot() >= gauges_.size()) continue;
    w.key(d.name).value(gauges_[d.id.slot()]);
  }
  w.end_object();

  w.key("histograms").begin_object();
  for (const MetricDesc& d : descs) {
    if (d.id.kind() != MetricKind::kHistogram || d.id.slot() >= histograms_.size()) {
      continue;
    }
    const HistogramData& h = histograms_[d.id.slot()];
    w.key(d.name).begin_object();
    w.key("count").value(h.count);
    w.key("sum").value(h.sum);
    if (h.count > 0) {
      w.key("min").value(h.min);
      w.key("max").value(h.max);
    }
    w.key("buckets").begin_array();
    for (std::size_t b = 0; b < HistogramData::kBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      w.begin_object();
      w.key("le").value(log2_bucket_upper_edge(b));
      w.key("count").value(h.buckets[b]);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.end_object();
  return w.str();
}

void MetricSet::write_json(const std::string& path) const {
  JsonWriter w;
  w.raw(to_json());
  w.write(path);
}

Table MetricSet::to_table() const {
  Table table{{"metric", "kind", "value"}};
  for (const MetricDesc& d : MetricRegistry::global().descriptors()) {
    switch (d.id.kind()) {
      case MetricKind::kCounter: {
        if (d.id.slot() >= counters_.size()) continue;
        const std::uint64_t v = counters_[d.id.slot()];
        if (v != 0) table.add_row({d.name, "counter", std::to_string(v)});
        break;
      }
      case MetricKind::kGauge: {
        if (d.id.slot() >= gauges_.size()) continue;
        const double v = gauges_[d.id.slot()];
        if (v != 0.0) table.add_row({d.name, "gauge", fmt_double(v, 3)});
        break;
      }
      case MetricKind::kHistogram: {
        if (d.id.slot() >= histograms_.size()) continue;
        const HistogramData& h = histograms_[d.id.slot()];
        if (h.count == 0) continue;
        table.add_row({d.name, "histogram",
                       std::to_string(h.count) + " obs, mean " + fmt_double(h.mean(), 3) +
                           " [" + fmt_double(h.min, 3) + ", " + fmt_double(h.max, 3) + "]"});
        break;
      }
    }
  }
  return table;
}

const BuiltinMetrics& builtin_metrics() {
  static const BuiltinMetrics metrics = [] {
    MetricRegistry& r = MetricRegistry::global();
    BuiltinMetrics m;
    m.trials_run = r.counter("trials_run", "trials executed (incl. infeasible)");
    m.trials_infeasible = r.counter("trials_infeasible", "plans rejected without simulating");
    m.sim_events = r.counter("sim_events", "simulation events across all trials");
    m.app_runs_completed = r.counter("app_runs_completed", "application runs that finished");
    m.app_runs_aborted = r.counter("app_runs_aborted", "runs aborted (wall cap or drop)");
    m.failures_seen = r.counter("failures_seen", "failures delivered to applications");
    m.failures_masked = r.counter("failures_masked", "failures absorbed without disruption");
    m.rollbacks = r.counter("rollbacks", "failures that forced a rollback");
    m.restarts = r.counter("restarts", "restart phases entered");
    m.recoveries = r.counter("recoveries", "parallel-recovery phases entered");
    m.checkpoints_completed = r.counter("checkpoints_completed", "checkpoints taken");
    m.pfs_phases = r.counter("pfs_phases", "phases routed through the shared PFS channel");
    m.jobs_submitted = r.counter("jobs_submitted", "workload jobs that arrived");
    m.jobs_completed = r.counter("jobs_completed", "workload jobs completed");
    m.jobs_dropped = r.counter("jobs_dropped", "workload jobs dropped");
    m.work_hours = r.gauge("work_hours", "simulated hours of forward progress + recompute");
    m.checkpoint_hours = r.gauge("checkpoint_hours", "simulated hours saving checkpoints");
    m.restart_hours = r.gauge("restart_hours", "simulated hours restoring checkpoints");
    m.recovery_hours = r.gauge("recovery_hours", "simulated hours in parallel recovery");
    m.rework_hours = r.gauge("rework_hours", "simulated hours of work redone after rollbacks");
    m.wall_hours = r.gauge("wall_hours", "simulated wall hours across runs");
    m.node_hours = r.gauge("node_hours", "active node-hours (energy proxy)");
    m.checkpoint_cost_seconds =
        r.histogram("checkpoint_cost_seconds", "seconds per completed checkpoint");
    m.rollback_rework_minutes =
        r.histogram("rollback_rework_minutes", "minutes of work lost per rollback");
    m.failure_severity = r.histogram("failure_severity", "severity level per failure seen");
    m.trial_events = r.histogram("trial_events", "simulation events per trial");
    m.trial_wall_hours = r.histogram("trial_wall_hours", "simulated wall hours per trial");
    m.checkpoint_level = r.histogram("checkpoint_level", "1-based level per checkpoint");
    return m;
  }();
  return metrics;
}

}  // namespace xres::obs
