#pragma once

/// \file single_app_study.hpp
/// Application-scaling efficiency studies (paper Section V, Figures 1–3):
/// one application at a time, scaled from 1% of the machine to the full
/// machine, executed under each resilience technique for many seeded
/// trials, reporting mean ± σ efficiency.
///
/// Trials execute through `TrialExecutor` (core/executor.hpp): results are
/// bit-identical for every thread count, and `threads == 1` reproduces the
/// historical serial path byte for byte.

#include <cstdint>
#include <optional>
#include <vector>

#include "core/executor.hpp"
#include "core/surrogate.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace xres {

/// A full figure: sweep application size × technique.
struct EfficiencyStudyConfig {
  MachineSpec machine{MachineSpec::exascale()};
  ResilienceConfig resilience{};
  AppType app_type{};
  /// T_B = 1440 min (one day) in Figures 1–3.
  Duration baseline{Duration::minutes(1440.0)};
  /// Fractions of the machine the application occupies (figure x-axis).
  std::vector<double> size_fractions{0.01, 0.02, 0.05, 0.10, 0.25, 0.50, 0.75, 1.00};
  std::vector<TechniqueKind> techniques{evaluated_techniques().begin(),
                                        evaluated_techniques().end()};
  std::uint32_t trials{200};
  std::uint64_t seed{20170529};
  FailureDistribution failure_distribution{FailureDistribution::exponential()};
  /// Worker threads for trial execution; 0 = hardware_concurrency, 1 =
  /// serial. Results are identical for every value (see core/executor.hpp).
  unsigned threads{0};
  /// Collect deterministic metrics (result.metrics / technique_metrics):
  /// one MetricSet per trial, merged in spec order, so the aggregate is
  /// byte-identical for every `threads` value. Never perturbs results.
  bool collect_metrics{false};
  /// Record a sim-time trace of trial 0 of every (size × technique) cell
  /// into result.trace — one Perfetto track per cell.
  bool collect_trace{false};
  /// Crash-safety envelope — journal/resume/watchdog/retry
  /// (docs/ROBUSTNESS.md). The default reproduces the historical behavior
  /// exactly. Batches are labeled "s<si>.t<ti>", so a journal written by
  /// one sweep only resumes the same sweep.
  recovery::TrialRecoveryOptions recovery{};
  /// How cells are answered (core/surrogate.hpp): kSim simulates every
  /// cell (the historical path, byte-identical); kAnalytic/kAuto simulate
  /// only anchor sizes and answer the rest from the analytic surrogate
  /// with a per-cell error bound. Simulated cells (anchors, auto
  /// fallbacks) use exactly the kSim per-trial seeds.
  SurrogateMode surrogate{SurrogateMode::kSim};
};

struct EfficiencyStudyResult {
  EfficiencyStudyConfig config{};
  /// cell[size_index][technique_index]: efficiency summary over trials.
  std::vector<std::vector<Summary>> efficiency;
  /// Mean failures seen per trial, same indexing (diagnostics).
  std::vector<std::vector<double>> mean_failures;

  /// Whole-study metrics merged over every trial in spec order (set when
  /// config.collect_metrics).
  std::optional<obs::MetricSet> metrics;
  /// Per-technique merges, index-aligned with config.techniques (set when
  /// config.collect_metrics).
  std::vector<obs::MetricSet> technique_metrics;
  /// Sim-time trace: trial 0 of each cell as its own track (populated when
  /// config.collect_trace).
  obs::TraceLog trace;
  /// What the crash-safety envelope did (always filled; all-zero counters
  /// and interrupted == false when config.recovery is inactive). When
  /// `interrupted` is set the study drained early: completed cells are
  /// valid, the rest are zero — callers should report partial progress and
  /// exit with recovery::kExitInterrupted instead of writing figure
  /// artifacts.
  recovery::BatchReport recovery_report{};

  /// Per-cell provenance when config.surrogate != kSim, indexed like
  /// `efficiency`; empty for pure-simulation runs. Surrogate-answered
  /// cells carry count == 0 summaries in `efficiency` (mean = predicted,
  /// stddev = 0) — `trials` in the CSV tells them apart.
  std::vector<std::vector<SurrogateCell>> surrogate_cells;

  /// The figure's series as an aligned table (rows: size; columns:
  /// technique "mean ± σ").
  [[nodiscard]] Table to_table() const;
  /// Surrogate provenance: per cell source (sim/anchor/fallback/surrogate),
  /// analytic prediction, surrogate prediction and error bound. Empty
  /// table when the study simulated every cell.
  [[nodiscard]] Table to_surrogate_table() const;
  /// Raw CSV: size_fraction, technique, mean, stddev, trials.
  [[nodiscard]] Table to_csv_table() const;
  /// Instrumented breakdown (rows: non-zero metrics; columns: one per
  /// technique plus a study total). Empty table when metrics were not
  /// collected.
  [[nodiscard]] Table to_metrics_table() const;
};

/// Progress callback: (completed cells, total cells). Invoked on the
/// calling thread, once per finished (size × technique) cell.
using StudyProgress = TrialProgress;

[[nodiscard]] EfficiencyStudyResult run_efficiency_study(
    const EfficiencyStudyConfig& config, const StudyProgress& progress = {});

}  // namespace xres
