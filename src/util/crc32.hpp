#pragma once

/// \file crc32.hpp
/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used to checksum
/// trial-journal records (recovery/journal.hpp). A torn write — the tail a
/// crashed process left behind — almost never carries a valid CRC, which is
/// what lets the journal loader distinguish "interrupted mid-append" from
/// "valid record".

#include <cstdint>
#include <string>
#include <string_view>

namespace xres {

/// CRC-32 of \p data, optionally continuing from a previous value (pass the
/// prior result as \p seed to checksum data in chunks).
[[nodiscard]] std::uint32_t crc32(std::string_view data, std::uint32_t seed = 0);

/// Fixed-width lowercase hex rendering ("cbf43926") used in journal lines.
[[nodiscard]] std::string crc32_hex(std::uint32_t crc);

}  // namespace xres
