#include "study/registry.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "study/platform_params.hpp"
#include "util/check.hpp"

namespace xres::study {

const char* to_string(StudyGroup group) {
  switch (group) {
    case StudyGroup::kFigure: return "figure";
    case StudyGroup::kTable: return "table";
    case StudyGroup::kAblation: return "ablation";
    case StudyGroup::kExtension: return "extension";
    case StudyGroup::kAdhoc: return "adhoc";
  }
  return "?";
}

const char* ParamSpec::type_name() const {
  switch (type) {
    case Type::kInt: return "int";
    case Type::kReal: return "real";
    case Type::kString: return "string";
  }
  return "?";
}

std::optional<ParamSpec::Type> ParamSpec::type_from_name(const std::string& name) {
  if (name == "int") return Type::kInt;
  if (name == "real") return Type::kReal;
  if (name == "string") return Type::kString;
  return std::nullopt;
}

std::string format_real(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

std::string ParamSpec::range_text() const {
  if (!min_value.has_value() && !max_value.has_value()) return "";
  std::string out = "[";
  out += min_value.has_value() ? format_real(*min_value) : "...";
  out += ", ";
  out += max_value.has_value() ? format_real(*max_value) : "...";
  out += "]";
  return out;
}

ParamSpec& ParamSchema::integer(std::string key, std::string help,
                                std::int64_t default_value) {
  ParamSpec spec;
  spec.key = std::move(key);
  spec.help = std::move(help);
  spec.type = ParamSpec::Type::kInt;
  spec.default_value = std::to_string(default_value);
  return add(std::move(spec));
}

ParamSpec& ParamSchema::real(std::string key, std::string help, double default_value) {
  ParamSpec spec;
  spec.key = std::move(key);
  spec.help = std::move(help);
  spec.type = ParamSpec::Type::kReal;
  spec.default_value = format_real(default_value);
  return add(std::move(spec));
}

ParamSpec& ParamSchema::text(std::string key, std::string help,
                             std::string default_value) {
  ParamSpec spec;
  spec.key = std::move(key);
  spec.help = std::move(help);
  spec.type = ParamSpec::Type::kString;
  spec.default_value = std::move(default_value);
  return add(std::move(spec));
}

ParamSpec& ParamSchema::add(ParamSpec spec) {
  XRES_CHECK(!spec.key.empty() && spec.key[0] != '-',
             "parameter keys are bare names, got '" + spec.key + "'");
  XRES_CHECK(spec.key.find('=') == std::string::npos &&
                 spec.key.find(' ') == std::string::npos,
             "parameter key '" + spec.key + "' must not contain '=' or spaces");
  XRES_CHECK(find(spec.key) == nullptr, "duplicate parameter key: " + spec.key);
  specs_.push_back(std::move(spec));
  return specs_.back();
}

void ParamSchema::set_default(const std::string& key, const std::string& value) {
  for (ParamSpec& p : specs_) {
    if (p.key == key) {
      validate_param_value(p, value);
      p.default_value = value;
      return;
    }
  }
  XRES_CHECK(false, "unknown parameter '" + key + "'");
}

const ParamSpec* ParamSchema::find(const std::string& key) const {
  for (const ParamSpec& p : specs_) {
    if (p.key == key) return &p;
  }
  return nullptr;
}

void ParamSchema::validate(const std::string& key, const std::string& value) const {
  const ParamSpec* spec = find(key);
  XRES_CHECK(spec != nullptr, "unknown parameter '" + key + "'");
  validate_param_value(*spec, value);
}

std::string StudyDefinition::help_summary() const {
  if (!summary.empty()) return summary;
  return name + " — " + description;
}

void validate_param_value(const ParamSpec& spec, const std::string& value) {
  if (spec.type == ParamSpec::Type::kString) return;
  XRES_CHECK(!value.empty(), "parameter '" + spec.key + "' needs a value");
  char* end = nullptr;
  double parsed = 0.0;
  if (spec.type == ParamSpec::Type::kInt) {
    parsed = static_cast<double>(std::strtoll(value.c_str(), &end, 10));
    XRES_CHECK(end != nullptr && *end == '\0',
               "parameter '" + spec.key + "' expects an integer, got '" + value + "'");
  } else {
    parsed = std::strtod(value.c_str(), &end);
    XRES_CHECK(end != nullptr && *end == '\0',
               "parameter '" + spec.key + "' expects a number, got '" + value + "'");
  }
  XRES_CHECK(!spec.min_value.has_value() || parsed >= *spec.min_value,
             "parameter '" + spec.key + "' = " + value + " is below its minimum " +
                 format_real(*spec.min_value));
  XRES_CHECK(!spec.max_value.has_value() || parsed <= *spec.max_value,
             "parameter '" + spec.key + "' = " + value + " is above its maximum " +
                 format_real(*spec.max_value));
}

ParamSet::ParamSet(const StudyDefinition& def) : ParamSet{def.params, def.name} {}

ParamSet::ParamSet(const ParamSchema& schema, std::string owner)
    : schema_{&schema}, owner_{std::move(owner)} {
  for (const ParamSpec& p : schema) values_[p.key] = p.default_value;
}

void ParamSet::set(const std::string& key, const std::string& value) {
  XRES_CHECK(schema_ != nullptr, "ParamSet not bound to a schema");
  const ParamSpec* spec = schema_->find(key);
  XRES_CHECK(spec != nullptr,
             "unknown parameter '" + key + "' for study '" + owner_ + "'");
  validate_param_value(*spec, value);
  values_[key] = value;
}

std::int64_t ParamSet::integer(const std::string& key) const {
  const std::string v = str(key);
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  XRES_CHECK(end != nullptr && *end == '\0' && !v.empty(),
             "parameter '" + key + "' expects an integer, got '" + v + "'");
  return parsed;
}

std::uint32_t ParamSet::u32(const std::string& key) const {
  return static_cast<std::uint32_t>(integer(key));
}

double ParamSet::real(const std::string& key) const {
  const std::string v = str(key);
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  XRES_CHECK(end != nullptr && *end == '\0' && !v.empty(),
             "parameter '" + key + "' expects a number, got '" + v + "'");
  return parsed;
}

std::string ParamSet::str(const std::string& key) const {
  const auto it = values_.find(key);
  XRES_CHECK(it != values_.end(), "undeclared parameter queried: " + key);
  return it->second;
}

namespace detail {
void register_builtin_studies(StudyRegistry& registry);
}  // namespace detail

StudyRegistry& StudyRegistry::instance() {
  // Leaked on purpose: study Registrations run during static init and the
  // registry must outlive every other static destructor.
  static StudyRegistry* registry = [] {
    auto* r = new StudyRegistry();
    detail::register_builtin_studies(*r);
    return r;
  }();
  return *registry;
}

void StudyRegistry::add(StudyDefinition def) {
  XRES_CHECK(!def.name.empty(), "study needs a name");
  XRES_CHECK(!def.description.empty(), "study '" + def.name + "' needs a description");
  XRES_CHECK(def.run != nullptr, "study '" + def.name + "' needs a run function");
  XRES_CHECK(find(def.name) == nullptr, "duplicate study name: " + def.name);
  // Every study answers `--platform.*` (platform_params.hpp); studies that
  // pre-declared one of the keys keep their own spec.
  add_platform_params(def.params);
  for (const ParamSpec& p : def.params) {
    validate_param_value(p, p.default_value);
  }
  studies_.push_back(std::make_unique<StudyDefinition>(std::move(def)));
}

const StudyDefinition* StudyRegistry::find(const std::string& name) const {
  for (const auto& s : studies_) {
    if (s->name == name) return s.get();
  }
  return nullptr;
}

std::vector<const StudyDefinition*> StudyRegistry::all() const {
  std::vector<const StudyDefinition*> out;
  out.reserve(studies_.size());
  for (const auto& s : studies_) out.push_back(s.get());
  std::sort(out.begin(), out.end(),
            [](const StudyDefinition* a, const StudyDefinition* b) {
              if (a->group != b->group) return a->group < b->group;
              return a->name < b->name;
            });
  return out;
}

std::vector<const StudyDefinition*> StudyRegistry::group_members(
    const std::vector<StudyGroup>& groups) const {
  std::vector<const StudyDefinition*> out;
  for (const StudyDefinition* def : all()) {
    if (std::find(groups.begin(), groups.end(), def->group) != groups.end()) {
      out.push_back(def);
    }
  }
  return out;
}

Registration::Registration(StudyDefinition def) {
  StudyRegistry::instance().add(std::move(def));
}

}  // namespace xres::study
