#include "util/barchart.hpp"

#include <algorithm>
#include <cstdio>

#include "util/check.hpp"

namespace xres {

BarChart::BarChart(std::vector<std::string> series_names)
    : series_{std::move(series_names)} {
  XRES_CHECK(!series_.empty(), "bar chart needs at least one series");
}

void BarChart::add_category(const std::string& name, const std::vector<double>& values) {
  XRES_CHECK(values.size() == series_.size(), "value count must match series count");
  for (double v : values) XRES_CHECK(v >= 0.0, "bar values must be non-negative");
  categories_.push_back(Category{name, values});
}

std::string BarChart::render(std::size_t bar_width, double max_value) const {
  XRES_CHECK(bar_width >= 4, "bar width too small");
  double scale_max = max_value;
  if (scale_max <= 0.0) {
    scale_max = 1.0;
    for (const Category& cat : categories_) {
      for (double v : cat.values) scale_max = std::max(scale_max, v);
    }
  }

  std::size_t cat_width = 0;
  for (const Category& cat : categories_) cat_width = std::max(cat_width, cat.name.size());
  std::size_t series_width = 0;
  for (const std::string& s : series_) series_width = std::max(series_width, s.size());

  std::string out;
  char value_buf[32];
  for (const Category& cat : categories_) {
    for (std::size_t s = 0; s < series_.size(); ++s) {
      // Category label only on the group's first row.
      out += s == 0 ? cat.name : std::string(cat.name.size(), ' ');
      out.append(cat_width - cat.name.size() + 1, ' ');
      out += series_[s];
      out.append(series_width - series_[s].size() + 1, ' ');
      out += '|';
      const double clamped = std::min(cat.values[s], scale_max);
      const auto bar = static_cast<std::size_t>(
          clamped / scale_max * static_cast<double>(bar_width) + 0.5);
      out.append(bar, '#');
      std::snprintf(value_buf, sizeof value_buf, " %.3f", cat.values[s]);
      out += value_buf;
      out += '\n';
    }
    out += '\n';
  }
  return out;
}

}  // namespace xres
