#pragma once

/// \file surrogate.hpp
/// The analytic efficiency surrogate: answers study cells from the
/// closed-form predictor (resilience/analytic.hpp) corrected by residuals
/// observed at simulated *anchor* cells, instead of simulating every cell.
///
/// Contract (enforced by tests/surrogate_diff_test.cpp):
///  - anchor cells are simulated with exactly the per-trial seeds the full
///    simulation would use, so their results are byte-identical to it;
///  - every surrogate-answered cell reports an error bound `bound` such
///    that |predicted − simulated mean| ≤ bound for the same seeds;
///  - in auto mode, a cell whose bound exceeds `kAutoBoundThreshold` falls
///    back to full simulation (and is then byte-identical as well).
///
/// The bound is the interpolation bracket plus sampling noise: with
/// residuals r_a, r_b at the bracketing anchors, standard errors
/// sem_a, sem_b of their simulated means, and anchor span
/// s = f_b − f_a (machine-share distance),
///
///   bound = |r_a − r_b| + 2 (sem_a + sem_b)
///         + kBoundMargin + kBoundSpanMargin · s².
///
/// The residual of the true curve at an interior size lies between r_a and
/// r_b up to curvature (efficiency responds monotonically to machine share
/// through the failure rate, Eqs. 1–8). Linear-interpolation error grows
/// with the square of the span, so the margin has a span² part on top of
/// the flat floor; the sem term covers the anchors themselves
/// being sample means.

#include <cstdint>
#include <optional>
#include <string>

#include "core/executor.hpp"

namespace xres {

/// How an efficiency study answers its cells (EfficiencyStudyConfig).
enum class SurrogateMode {
  kSim,       ///< simulate every cell (the historical path; the default)
  kAnalytic,  ///< anchors simulated, every other cell surrogate-answered
  kAuto,      ///< like kAnalytic, but bound-exceeded cells fall back to sim
};

[[nodiscard]] const char* to_string(SurrogateMode mode);

/// Parse "sim" | "analytic" | "auto"; throws CheckError otherwise.
[[nodiscard]] SurrogateMode surrogate_mode_from_string(const std::string& name);

/// Auto mode simulates a cell instead of answering from the surrogate when
/// its reported bound exceeds this (absolute efficiency).
inline constexpr double kAutoBoundThreshold = 0.05;

/// The slack added to every surrogate bound for interpolation curvature:
/// a flat floor plus a term proportional to the bracketing anchors'
/// machine-share span (wider brackets leave more room for the residual to
/// bend away from the chord; linear-interpolation error is O(span²), so
/// the term is quadratic — tight brackets stay tight).
inline constexpr double kBoundMargin = 0.02;
inline constexpr double kBoundSpanMargin = 0.30;

/// Per-cell provenance, index-aligned with the study result's efficiency
/// grid (EfficiencyStudyResult::surrogate_cells).
struct SurrogateCell {
  bool simulated{true};  ///< cell efficiency comes from full simulation
  bool anchor{false};    ///< simulated as an interpolation anchor
  bool fallback{false};  ///< auto mode: bound exceeded, simulated instead
  double analytic{0.0};  ///< closed-form Eqs. 1–8 prediction alone
  double predicted{0.0};  ///< surrogate prediction (unset when simulated)
  double bound{0.0};      ///< reported |predicted − sim mean| bound
};

/// Which size indices of an n-point sweep are simulated anchors: the
/// endpoints plus every second interior point, so every surrogate cell is
/// bracketed by adjacent anchors one step away.
[[nodiscard]] bool surrogate_anchor_index(std::size_t index, std::size_t count);

/// One anchor's simulated statistics, as consumed by the interpolation.
struct SurrogateAnchor {
  double fraction{0.0};       ///< machine share (interpolation abscissa)
  double analytic{0.0};       ///< closed-form prediction at the anchor
  double mean{0.0};           ///< simulated mean efficiency
  double sem{0.0};            ///< standard error of that mean
  double mean_failures{0.0};  ///< simulated mean failures per trial
};

/// A surrogate answer for one interior cell.
struct SurrogateEstimate {
  double predicted{0.0};
  double bound{0.0};
  double mean_failures{0.0};  ///< residual-interpolated failure count
};

/// Interpolate the analytic residual between the bracketing anchors \p a
/// and \p b for a cell at \p fraction with closed-form prediction
/// \p analytic. Requires a.fraction < b.fraction.
[[nodiscard]] SurrogateEstimate surrogate_estimate(const SurrogateAnchor& a,
                                                   const SurrogateAnchor& b,
                                                   double fraction, double analytic);

/// Memoized anchor simulations, so repeated surrogate queries (sweeps over
/// non-size axes, repeated CLI runs in one process) reuse each anchor.
/// Keys are full cell fingerprints (config + seeds); the memo is
/// process-global and thread-safe. Studies that observe trials (metrics /
/// trace) or journal them bypass the memo — a memo hit would skip the
/// per-trial side effects.
[[nodiscard]] std::string surrogate_cell_key(const SingleAppTrialConfig& trial,
                                             std::uint64_t seed, std::size_t si,
                                             std::size_t ti, std::uint32_t trials);
[[nodiscard]] std::optional<SurrogateAnchor> surrogate_memo_find(
    const std::string& key);
void surrogate_memo_store(const std::string& key, const SurrogateAnchor& anchor);

}  // namespace xres
