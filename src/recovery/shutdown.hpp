#pragma once

/// \file shutdown.hpp
/// Graceful SIGINT/SIGTERM handling for study drivers. The first signal
/// only sets an async-signal-safe flag; the executor notices it between
/// trials, stops handing out new work, drains the trials already in flight
/// (so the journal never records a half-reduced batch), and the driver
/// flushes the journal, emits a partial summary, and exits with
/// `kExitInterrupted`. A second signal hard-exits immediately — the escape
/// hatch when a drain itself wedges.

namespace xres::recovery {

/// Exit code for "interrupted cleanly, journal flushed, resumable with
/// --resume". Chosen to match BSD's EX_TEMPFAIL ("temporary failure, retry
/// later") and to be distinct from 0 (success), 1 (error), and 2 (CLI
/// usage error). Documented in docs/ROBUSTNESS.md.
inline constexpr int kExitInterrupted = 75;

/// Install SIGINT/SIGTERM handlers (idempotent; call once near the top of
/// main). Without this, signals keep their default lethal disposition.
void install_shutdown_handlers();

/// True once a shutdown signal has been received.
[[nodiscard]] bool shutdown_requested();

/// The handler's decision logic, factored out so signal-storm escalation is
/// testable without raising real signals: records \p sig and returns 0 for
/// the first signal (start draining) or the `128 + sig` exit code the
/// handler must `_Exit` with for every repeat. Async-signal-safe.
int note_shutdown_signal(int sig);

/// The signal number that requested shutdown (0 when none yet).
[[nodiscard]] int shutdown_signal();

// Test hooks: the executor's drain path must be testable without raising
// real signals against the test runner.
void request_shutdown_for_tests();
void clear_shutdown_for_tests();

}  // namespace xres::recovery
