// Tests for the correlated (burst) failure extension.

#include <gtest/gtest.h>

#include <map>

#include "core/workload_engine.hpp"
#include "failure/process.hpp"
#include "platform/machine.hpp"
#include "sim/simulation.hpp"
#include "util/check.hpp"

namespace xres {
namespace {

TEST(Machine, OwnersInRangeFindsIntersections) {
  Machine machine{MachineSpec::testbed(100)};
  ASSERT_TRUE(machine.allocate(20, OwnerId{1}).has_value());  // 0-19
  ASSERT_TRUE(machine.allocate(30, OwnerId{2}).has_value());  // 20-49
  ASSERT_TRUE(machine.allocate(10, OwnerId{3}).has_value());  // 50-59

  EXPECT_EQ(machine.owners_in_range(0, 5), (std::vector<OwnerId>{OwnerId{1}}));
  EXPECT_EQ(machine.owners_in_range(15, 10),
            (std::vector<OwnerId>{OwnerId{1}, OwnerId{2}}));
  EXPECT_EQ(machine.owners_in_range(19, 41),
            (std::vector<OwnerId>{OwnerId{1}, OwnerId{2}, OwnerId{3}}));
  EXPECT_TRUE(machine.owners_in_range(60, 40).empty());
  EXPECT_EQ(machine.owners_in_range(49, 2),
            (std::vector<OwnerId>{OwnerId{2}, OwnerId{3}}));
  EXPECT_THROW((void)machine.owners_in_range(0, 0), CheckError);
}

TEST(BurstFailures, ConfigValidation) {
  BurstFailureConfig config;
  config.probability = 1.5;
  EXPECT_THROW(config.validate(), CheckError);
  config = BurstFailureConfig{};
  config.width = 0;
  EXPECT_THROW(config.validate(), CheckError);
}

TEST(BurstFailures, BurstHitsAllIntersectingApplications) {
  Simulation sim;
  Machine machine{MachineSpec::testbed(100)};
  ASSERT_TRUE(machine.allocate(50, OwnerId{1}).has_value());  // 0-49
  ASSERT_TRUE(machine.allocate(50, OwnerId{2}).has_value());  // 50-99
  const SeverityModel severity = SeverityModel::bluegene_default();

  BurstFailureConfig bursts;
  bursts.probability = 1.0;  // every failure is a burst
  bursts.width = 100;        // spanning the whole machine

  std::map<OwnerId, int> hits;
  SystemFailureProcess process{sim,
                               machine,
                               Duration::days(30.0),
                               severity,
                               Pcg32{5},
                               [&](const Failure& f, const Machine::Victim& v) {
                                 hits[v.owner]++;
                                 EXPECT_GE(f.severity, 2);  // bursts are node losses
                               },
                               bursts};
  process.start();
  sim.run_until(TimePoint::at(Duration::days(60.0)));
  process.stop();

  ASSERT_GT(process.bursts_delivered(), 50U);
  // Bursts extend upward from the victim: owner 2 (nodes 50-99) is hit by
  // every burst; owner 1 only by bursts originating in its own range
  // (about half, since victims are uniform).
  EXPECT_EQ(static_cast<std::uint64_t>(hits[OwnerId{2}]), process.bursts_delivered());
  EXPECT_GT(hits[OwnerId{1}], 0);
  EXPECT_LT(hits[OwnerId{1}], hits[OwnerId{2}]);
  EXPECT_NEAR(static_cast<double>(hits[OwnerId{1}]) /
                  static_cast<double>(process.bursts_delivered()),
              0.5, 0.15);
}

TEST(BurstFailures, NarrowBurstsHitFewerApplications) {
  Simulation sim;
  Machine machine{MachineSpec::testbed(100)};
  ASSERT_TRUE(machine.allocate(50, OwnerId{1}).has_value());
  ASSERT_TRUE(machine.allocate(50, OwnerId{2}).has_value());
  const SeverityModel severity = SeverityModel::single_level();

  BurstFailureConfig bursts;
  bursts.probability = 1.0;
  bursts.width = 2;  // can straddle at most one boundary

  int total_callbacks = 0;
  SystemFailureProcess process{
      sim,
      machine,
      Duration::days(30.0),
      severity,
      Pcg32{6},
      [&](const Failure&, const Machine::Victim&) { ++total_callbacks; },
      bursts};
  process.start();
  sim.run_until(TimePoint::at(Duration::days(60.0)));
  process.stop();

  // Each burst hits 1 application (2 only when starting at node 49).
  EXPECT_GE(static_cast<std::uint64_t>(total_callbacks), process.bursts_delivered());
  EXPECT_LE(static_cast<std::uint64_t>(total_callbacks),
            process.bursts_delivered() + process.bursts_delivered() / 10);
}

TEST(BurstFailures, ZeroProbabilityReproducesPaperModel) {
  Simulation sim;
  Machine machine{MachineSpec::testbed(100)};
  ASSERT_TRUE(machine.allocate(100, OwnerId{1}).has_value());
  const SeverityModel severity = SeverityModel::bluegene_default();
  SystemFailureProcess process{
      sim,        machine, Duration::days(30.0), severity, Pcg32{7},
      [](const Failure&, const Machine::Victim&) {}};
  process.start();
  sim.run_until(TimePoint::at(Duration::days(90.0)));
  process.stop();
  EXPECT_EQ(process.bursts_delivered(), 0U);
  EXPECT_GT(process.failures_delivered(), 0U);
}

TEST(BurstFailures, WorkloadEngineBurstsIncreaseDrops) {
  WorkloadConfig wconfig;
  wconfig.machine_nodes = 1000;
  wconfig.arrival_count = 15;
  wconfig.mean_interarrival = Duration::hours(1.0);
  wconfig.size_fractions = {0.10, 0.20};
  wconfig.baseline_hours = {3.0, 6.0};
  const ArrivalPattern pattern = generate_pattern(wconfig, 31, 0);

  WorkloadEngineConfig config;
  config.machine = MachineSpec::testbed(1000);
  config.policy = TechniquePolicy::fixed_technique(TechniqueKind::kCheckpointRestart);
  config.resilience.node_mtbf = Duration::years(1.0);

  const WorkloadRunResult independent = run_workload(config, pattern);
  config.burst_probability = 0.3;
  config.burst_width = 500;
  const WorkloadRunResult bursty = run_workload(config, pattern);

  EXPECT_EQ(bursty.completed + bursty.dropped, bursty.total_jobs);
  // More applications take hits per event; the workload cannot fare better.
  EXPECT_GE(bursty.failures_injected + 5, independent.failures_injected);
}

}  // namespace
}  // namespace xres
