// Tests for xres::obs metrics: log2 bucketing, merge semantics (vs. a
// single-pass reference), registry behavior and — the load-bearing
// contract — byte-identical study metrics for every thread count.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/app_type.hpp"
#include "core/single_app_study.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace xres::obs {
namespace {

TEST(ObsLog2Bucket, EdgeValues) {
  EXPECT_EQ(log2_bucket(0.0), 0U);
  EXPECT_EQ(log2_bucket(0.5), 0U);
  EXPECT_EQ(log2_bucket(0.999), 0U);
  EXPECT_EQ(log2_bucket(-3.0), 0U);
  EXPECT_EQ(log2_bucket(1.0), 1U);
  EXPECT_EQ(log2_bucket(1.999), 1U);
  EXPECT_EQ(log2_bucket(2.0), 2U);
  EXPECT_EQ(log2_bucket(3.999), 2U);
  EXPECT_EQ(log2_bucket(4.0), 3U);
  EXPECT_EQ(log2_bucket(1e30), 63U);  // clamped to the last bucket
}

TEST(ObsLog2Bucket, UpperEdges) {
  EXPECT_DOUBLE_EQ(log2_bucket_upper_edge(0), 1.0);
  EXPECT_DOUBLE_EQ(log2_bucket_upper_edge(1), 2.0);
  EXPECT_DOUBLE_EQ(log2_bucket_upper_edge(2), 4.0);
  EXPECT_DOUBLE_EQ(log2_bucket_upper_edge(3), 8.0);
}

TEST(ObsRegistry, BuiltinsAreRegisteredAndFindable) {
  const BuiltinMetrics& builtin = builtin_metrics();
  EXPECT_TRUE(builtin.trials_run.valid());
  EXPECT_EQ(builtin.trials_run.kind(), MetricKind::kCounter);
  EXPECT_EQ(builtin.wall_hours.kind(), MetricKind::kGauge);
  EXPECT_EQ(builtin.failure_severity.kind(), MetricKind::kHistogram);

  const auto found = MetricRegistry::global().find("trials_run");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->slot(), builtin.trials_run.slot());
  EXPECT_FALSE(MetricRegistry::global().find("no_such_metric").has_value());
}

TEST(ObsMetricSet, CountersGaugesAndZeroState) {
  const BuiltinMetrics& builtin = builtin_metrics();
  MetricSet set;
  EXPECT_EQ(set.counter(builtin.trials_run), 0U);
  EXPECT_DOUBLE_EQ(set.gauge(builtin.wall_hours), 0.0);

  set.inc(builtin.trials_run);
  set.inc(builtin.trials_run, 4);
  set.add(builtin.wall_hours, 1.5);
  set.add(builtin.wall_hours, 2.0);
  EXPECT_EQ(set.counter(builtin.trials_run), 5U);
  EXPECT_DOUBLE_EQ(set.gauge(builtin.wall_hours), 3.5);
}

TEST(ObsMetricSet, HistogramMergeMatchesSinglePassReference) {
  const BuiltinMetrics& builtin = builtin_metrics();
  const MetricId id = builtin.trial_wall_hours;

  // Random positive values split across two "trial" sets.
  Pcg32 rng{42};
  std::vector<double> values;
  values.reserve(500);
  for (int i = 0; i < 500; ++i) values.push_back(rng.next_double() * 1000.0);

  MetricSet a;
  MetricSet b;
  MetricSet reference;
  for (std::size_t i = 0; i < values.size(); ++i) {
    (i < 200 ? a : b).observe(id, values[i]);
    reference.observe(id, values[i]);
  }

  MetricSet merged;
  merged.merge(a);
  merged.merge(b);

  const HistogramData& got = merged.histogram(id);
  const HistogramData& want = reference.histogram(id);
  EXPECT_EQ(got.count, want.count);
  EXPECT_DOUBLE_EQ(got.sum, want.sum);
  EXPECT_DOUBLE_EQ(got.min, want.min);
  EXPECT_DOUBLE_EQ(got.max, want.max);
  EXPECT_EQ(got.buckets, want.buckets);
}

TEST(ObsMetricSet, MergeSumsCountersAndGauges) {
  const BuiltinMetrics& builtin = builtin_metrics();
  MetricSet a;
  MetricSet b;
  a.inc(builtin.failures_seen, 3);
  b.inc(builtin.failures_seen, 7);
  a.add(builtin.work_hours, 1.25);
  b.add(builtin.work_hours, 0.75);

  a.merge(b);
  EXPECT_EQ(a.counter(builtin.failures_seen), 10U);
  EXPECT_DOUBLE_EQ(a.gauge(builtin.work_hours), 2.0);
}

TEST(ObsMetricSet, JsonShapeIsStable) {
  MetricSet set;
  const std::string json = set.to_json();
  // All registered metrics appear even at zero, so the document shape does
  // not depend on which events happened to fire.
  EXPECT_NE(json.find("\"schema\":\"xres-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"trials_run\""), std::string::npos);
  EXPECT_NE(json.find("\"checkpoint_cost_seconds\""), std::string::npos);
}

TEST(ObsMetricSet, TableShowsOnlyNonZeroMetrics) {
  const BuiltinMetrics& builtin = builtin_metrics();
  MetricSet set;
  set.inc(builtin.rollbacks, 2);
  const std::string text = set.to_table().to_text();
  EXPECT_NE(text.find("rollbacks"), std::string::npos);
  EXPECT_EQ(text.find("jobs_dropped"), std::string::npos);
}

// The tentpole acceptance criterion: the merged study metrics are
// byte-identical for every --threads value.
TEST(ObsStudyMetricsDeterminism, ThreadCountInvariantJson) {
  auto run = [](unsigned threads) {
    EfficiencyStudyConfig config;
    config.app_type = app_type_by_name("A32");
    config.size_fractions = {0.10, 0.25};
    config.trials = 3;
    config.threads = threads;
    config.collect_metrics = true;
    const EfficiencyStudyResult result = run_efficiency_study(config);
    EXPECT_TRUE(result.metrics.has_value());
    EXPECT_EQ(result.technique_metrics.size(), config.techniques.size());
    return result.metrics->to_json();
  };

  const std::string serial = run(1);
  EXPECT_GT(serial.size(), 0U);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

}  // namespace
}  // namespace xres::obs
