# Empty compiler generated dependencies file for ablation_severity_pmf.
# This may be replaced when dependencies are built.
