#pragma once

/// \file scheduler.hpp
/// Resource-management heuristics (paper Section III-D).
///
/// A mapping event fires when an application arrives or finishes. The
/// scheduler sees the set of unmapped applications and decides which to
/// start through the SchedulerContext; applications it cannot (or chooses
/// not to) start remain unmapped for future mapping events.

#include <memory>
#include <string>
#include <vector>

#include "apps/application.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace xres {

/// The engine-side interface a scheduler drives during one mapping event.
class SchedulerContext {
 public:
  virtual ~SchedulerContext() = default;

  /// Current simulated time.
  [[nodiscard]] virtual TimePoint now() const = 0;

  /// Idle nodes available right now.
  [[nodiscard]] virtual std::uint32_t free_nodes() const = 0;

  /// Try to start \p job immediately. Returns false when the machine cannot
  /// host it right now (the job stays unmapped).
  virtual bool try_start(const Job& job) = 0;

  /// Remove \p job from the system without executing it (deadline
  /// infeasible). Counted as dropped.
  virtual void drop(const Job& job) = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Map as many of \p pending (in arrival order) as the policy allows.
  /// \p rng is the study's scheduler stream (used by the random policy).
  virtual void map(const std::vector<const Job*>& pending, SchedulerContext& ctx,
                   Pcg32& rng) = 0;
};

/// First come, first served: start jobs strictly in arrival order; stop at
/// the first job that does not fit (no backfilling).
class FcfsScheduler final : public Scheduler {
 public:
  [[nodiscard]] const char* name() const override { return "FCFS"; }
  void map(const std::vector<const Job*>& pending, SchedulerContext& ctx,
           Pcg32& rng) override;
};

/// Random: repeatedly pick a random unmapped job and try to start it;
/// jobs that do not fit return to the unmapped set (every job is attempted
/// once per mapping event).
class RandomScheduler final : public Scheduler {
 public:
  [[nodiscard]] const char* name() const override { return "Random"; }
  void map(const std::vector<const Job*>& pending, SchedulerContext& ctx,
           Pcg32& rng) override;
};

/// Slack-based: drop jobs whose remaining slack (deadline − now − baseline)
/// is negative, then start jobs in order of increasing slack; jobs that do
/// not fit return to the unmapped set.
///
/// Note: the paper defines slack against the arrival time (T_D − T_B −
/// T_A), which is non-negative by construction of Eq. 1; the drop rule
/// ("negative slack indicates the application cannot complete before its
/// deadline") only bites when slack is measured from the current time, so
/// that is what we implement.
class SlackScheduler final : public Scheduler {
 public:
  [[nodiscard]] const char* name() const override { return "Slack"; }
  void map(const std::vector<const Job*>& pending, SchedulerContext& ctx,
           Pcg32& rng) override;

  /// Remaining slack of a job at time \p now.
  [[nodiscard]] static Duration slack(const Job& job, TimePoint now);
};

/// Extension beyond the paper: FCFS with greedy backfilling — jobs are
/// attempted in arrival order but a misfit does not block later jobs
/// (contrast with the paper's strict FCFS).
class FirstFitScheduler final : public Scheduler {
 public:
  [[nodiscard]] const char* name() const override { return "FirstFit"; }
  void map(const std::vector<const Job*>& pending, SchedulerContext& ctx,
           Pcg32& rng) override;
};

/// Extension beyond the paper: shortest job (by baseline execution time)
/// first; ties broken by arrival order.
class SjfScheduler final : public Scheduler {
 public:
  [[nodiscard]] const char* name() const override { return "SJF"; }
  void map(const std::vector<const Job*>& pending, SchedulerContext& ctx,
           Pcg32& rng) override;
};

/// Extension beyond the paper: topology-aware packing. Jobs are attempted
/// largest-first (ties broken by arrival order) so big applications claim
/// aligned contiguous regions before fragmentation sets in; the engine
/// additionally switches the machine to grouped placement
/// (Machine::set_placement_group with the fat-tree leaf radix) so every
/// allocation spans as few leaf switches as possible. Under the flat model
/// the placement is inert and TopoPack behaves like a largest-first
/// backfilling FirstFit.
class TopoPackScheduler final : public Scheduler {
 public:
  [[nodiscard]] const char* name() const override { return "TopoPack"; }
  void map(const std::vector<const Job*>& pending, SchedulerContext& ctx,
           Pcg32& rng) override;
};

enum class SchedulerKind { kFcfs, kRandom, kSlack, kFirstFit, kSjf, kTopoPack };

[[nodiscard]] const char* to_string(SchedulerKind kind);
[[nodiscard]] SchedulerKind scheduler_from_string(const std::string& name);
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind);

/// The paper's three heuristics, in its presentation order (Figures 4–5).
[[nodiscard]] const std::vector<SchedulerKind>& all_schedulers();

/// The paper's heuristics plus this library's extensions.
[[nodiscard]] const std::vector<SchedulerKind>& extended_schedulers();

}  // namespace xres
