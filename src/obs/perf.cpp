#include "obs/perf.hpp"

#include <atomic>

#include <sys/resource.h>

namespace xres::obs {

namespace {

// Trivially destructible, so flushes from static-storage destructors (late
// EventQueue teardown) are safe in any order.
struct GlobalCounters {
  std::atomic<std::uint64_t> events_scheduled{0};
  std::atomic<std::uint64_t> events_popped{0};
  std::atomic<std::uint64_t> events_cancelled{0};
  std::atomic<std::uint64_t> heap_compactions{0};
  std::atomic<std::uint64_t> watchdog_polls{0};
  std::atomic<std::uint64_t> journal_fsync_batches{0};
  std::atomic<std::uint64_t> trials_executed{0};
  std::atomic<std::uint64_t> trials_resumed{0};
  std::atomic<std::uint64_t> trials_retried{0};
  std::atomic<std::uint64_t> trials_quarantined{0};
  std::atomic<std::uint64_t> batched_trials{0};
  std::atomic<std::uint64_t> surrogate_hits{0};
  std::atomic<std::uint64_t> surrogate_fallbacks{0};
};

GlobalCounters g_counters;

constexpr auto kRelaxed = std::memory_order_relaxed;

}  // namespace

void perf_add_engine(std::uint64_t scheduled, std::uint64_t popped,
                     std::uint64_t cancelled, std::uint64_t compactions) {
  if (scheduled != 0) g_counters.events_scheduled.fetch_add(scheduled, kRelaxed);
  if (popped != 0) g_counters.events_popped.fetch_add(popped, kRelaxed);
  if (cancelled != 0) g_counters.events_cancelled.fetch_add(cancelled, kRelaxed);
  if (compactions != 0) g_counters.heap_compactions.fetch_add(compactions, kRelaxed);
}

void perf_add_watchdog_polls(std::uint64_t polls) {
  if (polls != 0) g_counters.watchdog_polls.fetch_add(polls, kRelaxed);
}

void perf_add_journal_fsync() {
  g_counters.journal_fsync_batches.fetch_add(1, kRelaxed);
}

void perf_add_trials(std::uint64_t executed, std::uint64_t resumed,
                     std::uint64_t retried, std::uint64_t quarantined) {
  if (executed != 0) g_counters.trials_executed.fetch_add(executed, kRelaxed);
  if (resumed != 0) g_counters.trials_resumed.fetch_add(resumed, kRelaxed);
  if (retried != 0) g_counters.trials_retried.fetch_add(retried, kRelaxed);
  if (quarantined != 0) {
    g_counters.trials_quarantined.fetch_add(quarantined, kRelaxed);
  }
}

void perf_add_batched_trials(std::uint64_t count) {
  if (count != 0) g_counters.batched_trials.fetch_add(count, kRelaxed);
}

void perf_add_surrogate(std::uint64_t hits, std::uint64_t fallbacks) {
  if (hits != 0) g_counters.surrogate_hits.fetch_add(hits, kRelaxed);
  if (fallbacks != 0) g_counters.surrogate_fallbacks.fetch_add(fallbacks, kRelaxed);
}

PerfCounters perf_snapshot() {
  PerfCounters out;
  out.events_scheduled = g_counters.events_scheduled.load(kRelaxed);
  out.events_popped = g_counters.events_popped.load(kRelaxed);
  out.events_cancelled = g_counters.events_cancelled.load(kRelaxed);
  out.heap_compactions = g_counters.heap_compactions.load(kRelaxed);
  out.watchdog_polls = g_counters.watchdog_polls.load(kRelaxed);
  out.journal_fsync_batches = g_counters.journal_fsync_batches.load(kRelaxed);
  out.trials_executed = g_counters.trials_executed.load(kRelaxed);
  out.trials_resumed = g_counters.trials_resumed.load(kRelaxed);
  out.trials_retried = g_counters.trials_retried.load(kRelaxed);
  out.trials_quarantined = g_counters.trials_quarantined.load(kRelaxed);
  out.batched_trials = g_counters.batched_trials.load(kRelaxed);
  out.surrogate_hits = g_counters.surrogate_hits.load(kRelaxed);
  out.surrogate_fallbacks = g_counters.surrogate_fallbacks.load(kRelaxed);
  return out;
}

PerfCounters perf_delta(const PerfCounters& since) {
  const PerfCounters now = perf_snapshot();
  PerfCounters out;
  out.events_scheduled = now.events_scheduled - since.events_scheduled;
  out.events_popped = now.events_popped - since.events_popped;
  out.events_cancelled = now.events_cancelled - since.events_cancelled;
  out.heap_compactions = now.heap_compactions - since.heap_compactions;
  out.watchdog_polls = now.watchdog_polls - since.watchdog_polls;
  out.journal_fsync_batches =
      now.journal_fsync_batches - since.journal_fsync_batches;
  out.trials_executed = now.trials_executed - since.trials_executed;
  out.trials_resumed = now.trials_resumed - since.trials_resumed;
  out.trials_retried = now.trials_retried - since.trials_retried;
  out.trials_quarantined = now.trials_quarantined - since.trials_quarantined;
  out.batched_trials = now.batched_trials - since.batched_trials;
  out.surrogate_hits = now.surrogate_hits - since.surrogate_hits;
  out.surrogate_fallbacks = now.surrogate_fallbacks - since.surrogate_fallbacks;
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>> perf_counter_items(
    const PerfCounters& counters) {
  return {
      {"events_scheduled", counters.events_scheduled},
      {"events_popped", counters.events_popped},
      {"events_cancelled", counters.events_cancelled},
      {"heap_compactions", counters.heap_compactions},
      {"watchdog_polls", counters.watchdog_polls},
      {"journal_fsync_batches", counters.journal_fsync_batches},
      {"trials_executed", counters.trials_executed},
      {"trials_resumed", counters.trials_resumed},
      {"trials_retried", counters.trials_retried},
      {"trials_quarantined", counters.trials_quarantined},
      {"batched_trials", counters.batched_trials},
      {"surrogate_hits", counters.surrogate_hits},
      {"surrogate_fallbacks", counters.surrogate_fallbacks},
  };
}

std::uint64_t peak_rss_bytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in KiB.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;
}

}  // namespace xres::obs
