#include "sim/pfs_device.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace xres {

namespace {
// Sub-byte residues from floating-point progress accounting count as done.
constexpr double kRemainingEpsilonBytes = 1e-6;
}  // namespace

PfsDevice::PfsDevice(Simulation& sim, std::uint32_t service_channels,
                     Bandwidth channel_bandwidth)
    : sim_{sim},
      service_channels_{service_channels},
      aggregate_bps_{channel_bandwidth.to_bytes_per_second() *
                     static_cast<double>(service_channels)},
      last_update_s_{sim.now().to_seconds()} {
  XRES_CHECK(service_channels_ > 0, "PFS device needs at least one service channel");
  XRES_CHECK(aggregate_bps_ > 0.0, "PFS channel bandwidth must be positive");
}

PfsDevice::~PfsDevice() {
  if (has_pending_) sim_.cancel(pending_);
}

double PfsDevice::rate_of(const Transfer& t) const {
  const double share = aggregate_bps_ / static_cast<double>(active_.size());
  return std::min(t.rate_cap_bps, share);
}

void PfsDevice::advance_to_now() {
  const double now_s = sim_.now().to_seconds();
  const double elapsed = now_s - last_update_s_;
  last_update_s_ = now_s;
  if (elapsed <= 0.0 || active_.empty()) return;
  for (auto& [id, transfer] : active_) {
    transfer.remaining_bytes =
        std::max(0.0, transfer.remaining_bytes - rate_of(transfer) * elapsed);
  }
}

void PfsDevice::reschedule() {
  if (has_pending_) {
    sim_.cancel(pending_);
    has_pending_ = false;
  }
  if (active_.empty()) return;
  double min_eta = std::numeric_limits<double>::infinity();
  for (const auto& [id, transfer] : active_) {
    const double eta = std::max(0.0, transfer.remaining_bytes) / rate_of(transfer);
    min_eta = std::min(min_eta, eta);
  }
  pending_ = sim_.schedule_after(Duration::seconds(min_eta), [this] {
    has_pending_ = false;
    on_completion_event();
  });
  has_pending_ = true;
}

void PfsDevice::admit_from_queue() {
  while (active_.size() < service_channels_ && !waiting_.empty()) {
    const TransferId id = waiting_.front();
    waiting_.pop_front();
    auto it = queued_.find(id);
    if (it == queued_.end()) continue;  // cancelled while waiting
    active_.emplace(id, std::move(it->second));
    queued_.erase(it);
  }
}

void PfsDevice::on_completion_event() {
  advance_to_now();
  // Complete exactly one finished transfer per event; simultaneous
  // finishers re-fire at zero delay. "Finished" tolerates floating-point
  // residue exactly like SharedChannel: at large absolute clock values an
  // ETA below the clock's representable resolution cannot advance time, so
  // anything within a few ulps of completion at its current rate is done.
  const double clock_resolution =
      std::max(1e-9, sim_.now().to_seconds() * 8.0 * std::numeric_limits<double>::epsilon());
  auto best = active_.end();
  for (auto it = active_.begin(); it != active_.end(); ++it) {
    if (best == active_.end() ||
        it->second.remaining_bytes < best->second.remaining_bytes) {
      best = it;
    }
  }
  if (best != active_.end()) {
    const double done_threshold =
        std::max(kRemainingEpsilonBytes, rate_of(best->second) * clock_resolution);
    if (best->second.remaining_bytes <= done_threshold) {
      CompletionCallback callback = std::move(best->second.on_complete);
      measured_seconds_ += sim_.now().to_seconds() - best->second.submit_s;
      nominal_seconds_ += best->second.nominal_s;
      active_.erase(best);
      ++completed_;
      admit_from_queue();
      reschedule();
      callback();
      return;
    }
  }
  // Numeric corner: nothing quite finished; try again at the new ETA.
  reschedule();
}

PfsDevice::TransferId PfsDevice::begin_transfer(DataSize size, Bandwidth rate_cap,
                                                Duration nominal,
                                                CompletionCallback on_complete) {
  XRES_CHECK(static_cast<bool>(on_complete), "completion callback must be non-empty");
  XRES_CHECK(size >= DataSize::zero(), "transfer size must be non-negative");
  XRES_CHECK(rate_cap > Bandwidth::bytes_per_second(0.0),
             "transfer rate cap must be positive");
  advance_to_now();
  const TransferId id = next_id_++;
  Transfer t;
  t.remaining_bytes = size.to_bytes();
  t.rate_cap_bps = rate_cap.to_bytes_per_second();
  t.submit_s = sim_.now().to_seconds();
  t.nominal_s = nominal.to_seconds();
  t.on_complete = std::move(on_complete);
  if (active_.size() < service_channels_) {
    active_.emplace(id, std::move(t));
  } else {
    queued_.emplace(id, std::move(t));
    waiting_.push_back(id);
  }
  reschedule();
  return id;
}

bool PfsDevice::cancel(TransferId id) {
  if (auto it = queued_.find(id); it != queued_.end()) {
    // Leave the stale id in waiting_; admit_from_queue skips it.
    queued_.erase(it);
    return true;
  }
  auto it = active_.find(id);
  if (it == active_.end()) return false;
  advance_to_now();
  active_.erase(it);
  admit_from_queue();
  reschedule();
  return true;
}

}  // namespace xres
