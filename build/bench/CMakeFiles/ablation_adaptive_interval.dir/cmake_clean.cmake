file(REMOVE_RECURSE
  "CMakeFiles/ablation_adaptive_interval.dir/ablation_adaptive_interval.cpp.o"
  "CMakeFiles/ablation_adaptive_interval.dir/ablation_adaptive_interval.cpp.o.d"
  "ablation_adaptive_interval"
  "ablation_adaptive_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptive_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
