// Unit tests for the per-technique planners (Section IV models), the plan
// odometer, the analytic efficiency predictor, and Resilience Selection.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "apps/app_type.hpp"
#include "platform/transfer.hpp"
#include "resilience/analytic.hpp"
#include "resilience/planner.hpp"
#include "resilience/selector.hpp"
#include "util/check.hpp"

namespace xres {
namespace {

AppSpec make_app(const std::string& type, std::uint32_t nodes,
                 std::uint64_t steps = 1440) {
  return AppSpec{app_type_by_name(type), nodes, steps};
}

// Local helper mirroring Eq. 4 (with the planner's clamp).
double daly_interval_expected(double c, double lambda) {
  return std::max(std::sqrt(2.0 * c / lambda) - c, c / 10.0);
}

TEST(Planner, CheckpointRestartUsesEquations3And4) {
  const MachineSpec machine = MachineSpec::exascale();
  const ResilienceConfig config;
  const AppSpec app = make_app("A32", 120000);
  const ExecutionPlan plan =
      make_plan(TechniqueKind::kCheckpointRestart, app, machine, config);

  ASSERT_EQ(plan.levels.size(), 1U);
  const Duration expected_cost =
      pfs_checkpoint_time(DataSize::gigabytes(32.0), 120000, machine.network);
  EXPECT_DOUBLE_EQ(plan.levels[0].save_cost.to_seconds(), expected_cost.to_seconds());
  EXPECT_DOUBLE_EQ(plan.levels[0].restore_cost.to_seconds(), expected_cost.to_seconds());
  EXPECT_EQ(plan.levels[0].coverage, 3);

  // λ_a = N_a / M_n; τ from Eq. 4.
  const Rate lambda = Rate::one_per(Duration::years(10.0)) * 120000.0;
  EXPECT_DOUBLE_EQ(plan.failure_rate.per_second_value(), lambda.per_second_value());
  EXPECT_NEAR(plan.checkpoint_quantum.to_seconds(),
              daly_interval_expected(expected_cost.to_seconds(),
                                     lambda.per_second_value()),
              1e-6);
  EXPECT_DOUBLE_EQ(plan.work_target.to_seconds(), plan.baseline.to_seconds());
  EXPECT_TRUE(plan.rollback_on_failure);
  EXPECT_TRUE(plan.feasible);
}

TEST(Planner, MultilevelBuildsThreeOrderedLevels) {
  const MachineSpec machine = MachineSpec::exascale();
  const ResilienceConfig config;
  const AppSpec app = make_app("D64", 30000);
  const ExecutionPlan plan = make_plan(TechniqueKind::kMultilevel, app, machine, config);

  ASSERT_EQ(plan.levels.size(), 3U);
  // L1 (RAM) < L2 (partner) < L3 (PFS) in cost; coverage 1 < 2 < 3.
  EXPECT_LT(plan.levels[0].save_cost, plan.levels[1].save_cost);
  EXPECT_LT(plan.levels[1].save_cost, plan.levels[2].save_cost);
  EXPECT_EQ(plan.levels[0].coverage, 1);
  EXPECT_EQ(plan.levels[1].coverage, 2);
  EXPECT_EQ(plan.levels[2].coverage, 3);
  EXPECT_NEAR(plan.levels[0].save_cost.to_seconds(), 0.2, 1e-9);  // 64 GB / 320 GB/s
  // The optimizer nests multiple cheap checkpoints per expensive one.
  EXPECT_GE(plan.nesting[0], 1);
  EXPECT_GE(plan.nesting[1], 1);
  EXPECT_GT(plan.nesting[0] * plan.nesting[1], 1);
}

TEST(Planner, ParallelRecoveryAppliesEquations6And7) {
  const MachineSpec machine = MachineSpec::exascale();
  const ResilienceConfig config;
  const AppSpec app = make_app("D64", 10000);
  const ExecutionPlan plan =
      make_plan(TechniqueKind::kParallelRecovery, app, machine, config);

  // µ = 1 + 0.75/10 = 1.075 (Eq. 7).
  EXPECT_NEAR(message_logging_slowdown(app.type, config), 1.075, 1e-12);
  EXPECT_NEAR(plan.work_target / plan.baseline, 1.075, 1e-12);

  // In-memory partner-copy checkpoints (Eq. 6), NOT PFS.
  const Duration expected_cost =
      partner_copy_checkpoint_time(DataSize::gigabytes(64.0), machine.node, machine.network);
  EXPECT_DOUBLE_EQ(plan.levels.at(0).save_cost.to_seconds(), expected_cost.to_seconds());
  EXPECT_FALSE(plan.rollback_on_failure);
  EXPECT_DOUBLE_EQ(plan.recovery_parallelism, 4.0);
}

TEST(Planner, ParallelRecoverySlowdownGrowsWithCommunication) {
  const ResilienceConfig config;
  EXPECT_DOUBLE_EQ(message_logging_slowdown(app_type_by_name("A32"), config), 1.0);
  EXPECT_DOUBLE_EQ(message_logging_slowdown(app_type_by_name("B32"), config), 1.025);
  EXPECT_DOUBLE_EQ(message_logging_slowdown(app_type_by_name("C32"), config), 1.05);
  EXPECT_DOUBLE_EQ(message_logging_slowdown(app_type_by_name("D32"), config), 1.075);
}

TEST(Planner, RedundancyNodeCountsAndStretch) {
  const MachineSpec machine = MachineSpec::exascale();
  const ResilienceConfig config;
  const AppSpec app = make_app("C32", 10000);

  const ExecutionPlan partial =
      make_plan(TechniqueKind::kRedundancyPartial, app, machine, config);
  EXPECT_EQ(partial.physical_nodes, 15000U);
  EXPECT_DOUBLE_EQ(partial.replication_degree, 1.5);
  // Eq. 8 stretch: T_W + r·T_C = 0.5 + 1.5 × 0.5 = 1.25.
  EXPECT_NEAR(partial.work_target / partial.baseline, 1.25, 1e-12);
  // Raw failures arrive over all physical nodes.
  EXPECT_DOUBLE_EQ(partial.failure_rate.per_second_value(),
                   15000.0 / Duration::years(10.0).to_seconds());

  const ExecutionPlan full = make_plan(TechniqueKind::kRedundancyFull, app, machine, config);
  EXPECT_EQ(full.physical_nodes, 20000U);
  EXPECT_NEAR(full.work_target / full.baseline, 1.5, 1e-12);
  // Full duplication tolerates longer intervals than partial (its fatal
  // hazard lacks the constant singles term).
  EXPECT_GT(full.checkpoint_quantum, partial.checkpoint_quantum);
}

TEST(Planner, RedundancyInfeasibleAboveMachineCapacity) {
  const MachineSpec machine = MachineSpec::exascale();
  const ResilienceConfig config;
  // 100% of the machine cannot be duplicated.
  const ExecutionPlan full =
      make_plan(TechniqueKind::kRedundancyFull, make_app("A32", 120000), machine, config);
  EXPECT_FALSE(full.feasible);
  // 75% cannot be hosted at r = 1.5 either (needs 135,000 nodes).
  const ExecutionPlan partial = make_plan(TechniqueKind::kRedundancyPartial,
                                          make_app("A32", 90000), machine, config);
  EXPECT_FALSE(partial.feasible);
  // 50% at r = 1.5 fits exactly at 90,000 physical nodes.
  const ExecutionPlan fits = make_plan(TechniqueKind::kRedundancyPartial,
                                       make_app("A32", 60000), machine, config);
  EXPECT_TRUE(fits.feasible);
  EXPECT_EQ(fits.physical_nodes, 90000U);
}

TEST(Planner, NonePlanHasNoOverheadMachinery) {
  const MachineSpec machine = MachineSpec::exascale();
  const ResilienceConfig config;
  const ExecutionPlan plan =
      make_plan(TechniqueKind::kNone, make_app("B64", 5000), machine, config);
  EXPECT_TRUE(plan.levels.empty());
  EXPECT_EQ(plan.failure_rate, Rate::zero());
  EXPECT_FALSE(plan.checkpoint_quantum.is_finite());
  EXPECT_DOUBLE_EQ(plan.work_target.to_seconds(), plan.baseline.to_seconds());
}

TEST(Plan, OdometerSchedulesLevels) {
  ExecutionPlan plan;
  plan.levels = {CheckpointLevelSpec{Duration::seconds(1.0), Duration::seconds(1.0), 1},
                 CheckpointLevelSpec{Duration::seconds(2.0), Duration::seconds(2.0), 2},
                 CheckpointLevelSpec{Duration::seconds(3.0), Duration::seconds(3.0), 3}};
  plan.nesting = {3, 2, 1};
  // Pattern with n1=3, n2=2: checkpoints 1,2 -> L1; 3 -> L2; 4,5 -> L1;
  // 6 -> L3; repeats.
  EXPECT_EQ(plan.level_index_for_checkpoint(1), 0U);
  EXPECT_EQ(plan.level_index_for_checkpoint(2), 0U);
  EXPECT_EQ(plan.level_index_for_checkpoint(3), 1U);
  EXPECT_EQ(plan.level_index_for_checkpoint(4), 0U);
  EXPECT_EQ(plan.level_index_for_checkpoint(5), 0U);
  EXPECT_EQ(plan.level_index_for_checkpoint(6), 2U);
  EXPECT_EQ(plan.level_index_for_checkpoint(7), 0U);
  EXPECT_EQ(plan.level_index_for_checkpoint(12), 2U);
}

TEST(Plan, RecoveryLevelRespectsCoverage) {
  ExecutionPlan plan;
  plan.levels = {CheckpointLevelSpec{Duration::seconds(1.0), Duration::seconds(1.0), 1},
                 CheckpointLevelSpec{Duration::seconds(2.0), Duration::seconds(2.0), 3}};
  plan.nesting = {2, 1};
  EXPECT_EQ(plan.recovery_level_for(1), 0U);
  EXPECT_EQ(plan.recovery_level_for(2), 1U);
  EXPECT_EQ(plan.recovery_level_for(3), 1U);
  EXPECT_THROW((void)plan.recovery_level_for(4), CheckError);
}

TEST(Analytic, PredictionsAreProbabilities) {
  const MachineSpec machine = MachineSpec::exascale();
  const ResilienceConfig config;
  for (const AppType& type : all_app_types()) {
    for (TechniqueKind kind : evaluated_techniques()) {
      for (std::uint32_t nodes : {1200U, 30000U, 120000U}) {
        const ExecutionPlan plan =
            make_plan(kind, AppSpec{type, nodes, 1440}, machine, config);
        const double eff = predict_efficiency(plan, config);
        EXPECT_GE(eff, 0.0) << type.name << " " << to_string(kind);
        EXPECT_LE(eff, 1.0) << type.name << " " << to_string(kind);
      }
    }
  }
}

TEST(Analytic, EfficiencyDegradesWithScaleForCheckpointRestart) {
  const MachineSpec machine = MachineSpec::exascale();
  const ResilienceConfig config;
  double prev = 1.0;
  for (std::uint32_t nodes : {1200U, 12000U, 60000U, 120000U}) {
    const ExecutionPlan plan = make_plan(TechniqueKind::kCheckpointRestart,
                                         make_app("A32", nodes), machine, config);
    const double eff = predict_efficiency(plan, config);
    EXPECT_LT(eff, prev);
    prev = eff;
  }
}

TEST(Analytic, InfeasiblePlansPredictZero) {
  const MachineSpec machine = MachineSpec::exascale();
  const ResilienceConfig config;
  const ExecutionPlan plan = make_plan(TechniqueKind::kRedundancyFull,
                                       make_app("A32", 120000), machine, config);
  EXPECT_DOUBLE_EQ(predict_efficiency(plan, config), 0.0);
  EXPECT_FALSE(predict_wall_time(plan, config).is_finite());
}

TEST(Analytic, WallTimePredictionConsistent) {
  const MachineSpec machine = MachineSpec::exascale();
  const ResilienceConfig config;
  const ExecutionPlan plan = make_plan(TechniqueKind::kMultilevel,
                                       make_app("B32", 12000), machine, config);
  const double eff = predict_efficiency(plan, config);
  const Duration wall = predict_wall_time(plan, config);
  EXPECT_NEAR(plan.baseline / wall, eff, 1e-9);
}

TEST(Selector, PicksParallelRecoveryForLowCommAtScale) {
  // Figure 1's headline: PR dominates for A-class applications at every
  // size, so the selector must pick it at exascale.
  const ResilienceSelector selector{MachineSpec::exascale(), ResilienceConfig{}};
  const auto selection = selector.select(make_app("A32", 120000));
  EXPECT_EQ(selection.kind, TechniqueKind::kParallelRecovery);
  EXPECT_GT(selection.predicted_efficiency, 0.0);
  EXPECT_TRUE(selection.plan.feasible);
}

TEST(Selector, DefaultsToWorkloadTechniques) {
  const ResilienceSelector selector{MachineSpec::exascale(), ResilienceConfig{}};
  ASSERT_EQ(selector.candidates().size(), 3U);
  for (TechniqueKind kind : selector.candidates()) {
    EXPECT_NE(kind, TechniqueKind::kRedundancyPartial);
    EXPECT_NE(kind, TechniqueKind::kRedundancyFull);
    EXPECT_NE(kind, TechniqueKind::kNone);
  }
}

TEST(Selector, SelectionNeverWorseThanAnyFixedCandidate) {
  const ResilienceSelector selector{MachineSpec::exascale(), ResilienceConfig{}};
  for (const AppType& type : all_app_types()) {
    for (std::uint32_t nodes : {1200U, 30000U, 120000U}) {
      const AppSpec app{type, nodes, 1440};
      const auto selection = selector.select(app);
      for (TechniqueKind kind : selector.candidates()) {
        EXPECT_GE(selection.predicted_efficiency + 1e-12,
                  selector.predicted_efficiency(app, kind))
            << type.name << " @ " << nodes << " vs " << to_string(kind);
      }
    }
  }
}

TEST(Selector, RejectsNoneCandidate) {
  EXPECT_THROW(ResilienceSelector(MachineSpec::exascale(), ResilienceConfig{},
                                  {TechniqueKind::kNone}),
               CheckError);
}

TEST(TechniqueNames, RoundTrip) {
  for (TechniqueKind kind : evaluated_techniques()) {
    EXPECT_EQ(technique_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW((void)technique_from_string("raid0"), CheckError);
}

}  // namespace
}  // namespace xres
