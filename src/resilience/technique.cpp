#include "resilience/technique.hpp"

#include "util/check.hpp"

namespace xres {

const char* to_string(TechniqueKind kind) {
  switch (kind) {
    case TechniqueKind::kNone: return "none";
    case TechniqueKind::kCheckpointRestart: return "checkpoint-restart";
    case TechniqueKind::kMultilevel: return "multilevel";
    case TechniqueKind::kParallelRecovery: return "parallel-recovery";
    case TechniqueKind::kRedundancyPartial: return "redundancy-1.5";
    case TechniqueKind::kRedundancyFull: return "redundancy-2";
    case TechniqueKind::kSemiBlockingCheckpoint: return "semi-blocking-checkpoint";
  }
  return "?";
}

TechniqueKind technique_from_string(const std::string& name) {
  for (TechniqueKind kind :
       {TechniqueKind::kNone, TechniqueKind::kCheckpointRestart, TechniqueKind::kMultilevel,
        TechniqueKind::kParallelRecovery, TechniqueKind::kRedundancyPartial,
        TechniqueKind::kRedundancyFull, TechniqueKind::kSemiBlockingCheckpoint}) {
    if (name == to_string(kind)) return kind;
  }
  XRES_CHECK(false, "unknown resilience technique: " + name);
}

const std::array<TechniqueKind, 5>& evaluated_techniques() {
  static const std::array<TechniqueKind, 5> kinds{
      TechniqueKind::kCheckpointRestart, TechniqueKind::kMultilevel,
      TechniqueKind::kParallelRecovery, TechniqueKind::kRedundancyPartial,
      TechniqueKind::kRedundancyFull};
  return kinds;
}

const std::array<TechniqueKind, 3>& workload_techniques() {
  static const std::array<TechniqueKind, 3> kinds{
      TechniqueKind::kCheckpointRestart, TechniqueKind::kMultilevel,
      TechniqueKind::kParallelRecovery};
  return kinds;
}

}  // namespace xres
