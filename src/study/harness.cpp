#include "study/harness.hpp"

#include <atomic>
#include <cstdio>
#include <vector>

#include "recovery/json_parse.hpp"
#include "util/rng.hpp"

namespace xres::study {

RecoveryCoordinator::RecoveryCoordinator(const RecoveryCliOptions& cli, std::string study,
                                         std::uint64_t root_seed)
    : cli_{cli} {
  if (cli_.journal_path.empty()) return;

  recovery::JournalMeta meta;
  meta.study = std::move(study);
  meta.root_seed = root_seed;

  if (cli_.resume) {
    index_.emplace(recovery::ResumeIndex::load(cli_.journal_path, meta));
    const recovery::JournalLoadStats& stats = index_->stats();
    if (stats.found) {
      statusf("journal %s: %zu trial(s) to resume", cli_.journal_path.c_str(),
              index_->size());
      if (stats.corrupt_records != 0) {
        statusf(", %zu corrupt record(s) skipped", stats.corrupt_records);
      }
      if (stats.duplicate_records != 0) {
        statusf(", %zu duplicate(s) ignored", stats.duplicate_records);
      }
      if (stats.torn_tail) statusf(", torn tail dropped");
      statusf("\n");
    } else {
      statusf("journal %s: not found, starting fresh\n", cli_.journal_path.c_str());
    }
  } else {
    // A fresh (non-resume) run replaces any stale journal: appending to it
    // would let a later --resume resurrect the previous run's records.
    std::remove(cli_.journal_path.c_str());
  }
  journal_ = std::make_unique<recovery::TrialJournal>(cli_.journal_path, meta);
  recovery::install_shutdown_handlers();
}

recovery::TrialRecoveryOptions RecoveryCoordinator::options() {
  recovery::TrialRecoveryOptions options;
  options.journal = journal_.get();
  options.resume = index_.has_value() ? &*index_ : nullptr;
  options.trial_timeout_seconds = cli_.trial_timeout;
  options.trial_attempts = cli_.trial_retries + 1;
  return options;
}

int RecoveryCoordinator::finish() {
  if (journal_ != nullptr) journal_->flush();
  if (cli_.any() || report_.interrupted) {
    statusf("recovery: %s\n", report_.summary().c_str());
  }
  if (report_.interrupted) {
    statusf("interrupted by signal %d — journal flushed", recovery::shutdown_signal());
    if (journal_ != nullptr) {
      statusf("; resume with --journal %s --resume", journal_->path().c_str());
    }
    statusf("\n");
    return recovery::kExitInterrupted;
  }
  return 0;
}

std::vector<ExecutionResult> ObsCollector::run_batch(const TrialExecutor& executor,
                                                     std::uint64_t root_seed,
                                                     std::span<const TrialSpec> specs,
                                                     const std::string& label,
                                                     const TrialProgress& progress) {
  if (!options_.enabled()) return executor.run_batch(root_seed, specs, progress);

  std::vector<obs::TrialObs> observers(specs.size());
  for (obs::TrialObs& o : observers) {
    if (options_.metrics()) o.enable_metrics();
  }
  if (options_.trace() && !observers.empty()) observers.front().enable_trace();
  std::vector<ExecutionResult> results =
      executor.run_batch(root_seed, specs, observers, progress);
  if (options_.metrics()) {
    if (!metrics_.has_value()) metrics_.emplace();
    // Merge in spec order: byte-identical for every thread count.
    for (const obs::TrialObs& o : observers) metrics_->merge(*o.metrics());
  }
  if (options_.trace() && !observers.empty()) {
    trace_.add_track(label, std::move(*observers.front().trace()));
  }
  return results;
}

std::vector<ExecutionResult> ObsCollector::run_batch(const TrialExecutor& executor,
                                                     std::uint64_t root_seed,
                                                     std::span<const TrialSpec> specs,
                                                     const std::string& label,
                                                     RecoveryCoordinator& coordinator,
                                                     const TrialProgress& progress) {
  recovery::BatchReport report;
  std::vector<obs::TrialObs> observers;
  if (options_.enabled()) {
    observers.resize(specs.size());
    for (obs::TrialObs& o : observers) {
      if (options_.metrics()) o.enable_metrics();
    }
    if (options_.trace() && !observers.empty()) observers.front().enable_trace();
  }
  std::vector<ExecutionResult> results = executor.run_batch(
      root_seed, specs, observers, coordinator.options(), label, &report, progress);
  coordinator.absorb(report);
  // On an interrupted batch the observers of undrained trials are empty;
  // merging them is harmless because the driver withholds artifacts.
  if (options_.metrics() && !observers.empty()) {
    if (!metrics_.has_value()) metrics_.emplace();
    for (const obs::TrialObs& o : observers) metrics_->merge(*o.metrics());
  }
  if (options_.trace() && !observers.empty()) {
    trace_.add_track(label, std::move(*observers.front().trace()));
  }
  return results;
}

void ObsCollector::finish() {
  if (options_.metrics() && metrics_.has_value()) {
    std::printf("\nInstrumented breakdown (whole sweep):\n%s",
                metrics_->to_table().to_text().c_str());
    metrics_->write_json(options_.metrics_path);
    statusf("metrics written to %s\n", options_.metrics_path.c_str());
  }
  if (options_.trace() && !trace_.empty()) {
    trace_.write(options_.trace_path);
    statusf("trace written to %s (%zu tracks, %zu events)\n",
            options_.trace_path.c_str(), trace_.track_count(), trace_.event_count());
  }
}

namespace {

/// FNV-1a over the batch label, mixed into the per-pattern fingerprint so an
/// edited sweep grid reads its old records as stale instead of wrong.
std::uint64_t label_hash(const std::string& label) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

void run_patterns_controlled(
    RecoveryCoordinator& coordinator, const TrialExecutor& executor,
    const std::string& label, std::uint32_t patterns, std::uint64_t root_seed,
    const std::function<WorkloadOutcome(std::uint32_t)>& run,
    const std::function<void(std::uint32_t, const WorkloadOutcome&)>& consume) {
  const recovery::TrialRecoveryOptions rec = coordinator.options();
  std::vector<WorkloadOutcome> outcomes(patterns);
  std::atomic<std::size_t> stale{0};

  const auto fingerprint = [&](std::size_t idx) {
    return derive_seed(root_seed, label_hash(label), idx);
  };
  const auto journal_outcome = [&](std::size_t idx, const WorkloadOutcome& outcome) {
    if (rec.journal == nullptr) return;
    recovery::JournalRecord record;
    record.batch = label;
    record.index = idx;
    record.seed = fingerprint(idx);
    record.payload = serialize_workload_outcome(outcome);
    rec.journal->append(record);
  };

  TrialLoopControl control;
  control.trial_timeout_seconds = rec.trial_timeout_seconds;
  control.trial_attempts = rec.trial_attempts;
  control.drain_on_shutdown = rec.drain_on_shutdown;
  if (rec.resume != nullptr) {
    control.already_done = [&](std::size_t idx) {
      const recovery::JournalRecord* record = rec.resume->find(label, idx);
      if (record == nullptr) return false;
      if (record->seed != fingerprint(idx)) {
        stale.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      try {
        outcomes[idx] = parse_workload_outcome(record->payload);
      } catch (const recovery::JsonParseError&) {
        stale.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      return true;
    };
  }
  if (rec.quarantine_enabled()) {
    control.quarantine = [&](std::size_t idx, const std::string& reason) {
      outcomes[idx] = WorkloadOutcome{};
      outcomes[idx].quarantined = true;
      outcomes[idx].quarantine_reason = reason;
      journal_outcome(idx, outcomes[idx]);
    };
  }

  recovery::BatchReport report;
  executor.for_each_controlled(
      patterns,
      [&](std::size_t idx) {
        outcomes[idx] = run(static_cast<std::uint32_t>(idx));
        journal_outcome(idx, outcomes[idx]);
      },
      control, &report);
  report.stale_records += stale.load(std::memory_order_relaxed);
  coordinator.absorb(report);

  if (report.interrupted) return;  // partial sweep: caller withholds artifacts
  for (std::uint32_t p = 0; p < patterns; ++p) consume(p, outcomes[p]);
}

}  // namespace xres::study
