# Empty compiler generated dependencies file for ablation_checkpoint_compression.
# This may be replaced when dependencies are built.
