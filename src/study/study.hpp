#pragma once

/// \file study.hpp
/// Umbrella header for the study subsystem: the registry of every paper
/// figure/table/ablation/extension scenario, the shared harness plumbing,
/// the generic driver main, the suite runner, runtime spec files and the
/// grid-sweep planner.

#include "study/capture.hpp"    // IWYU pragma: export
#include "study/context.hpp"    // IWYU pragma: export
#include "study/figure.hpp"     // IWYU pragma: export
#include "study/harness.hpp"    // IWYU pragma: export
#include "study/options.hpp"    // IWYU pragma: export
#include "study/registry.hpp"   // IWYU pragma: export
#include "study/spec.hpp"       // IWYU pragma: export
#include "study/study_main.hpp" // IWYU pragma: export
#include "study/suite.hpp"      // IWYU pragma: export
#include "study/sweep.hpp"      // IWYU pragma: export
