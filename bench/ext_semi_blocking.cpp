// Extension bench: blocking vs. semi-blocking checkpoint/restart across
// application sizes (the improvement direction of the paper's related
// work [11][12]). Sweeps the overlap rate to show how much of traditional
// checkpointing's exascale collapse overlap recovers.

#include <cstdio>
#include <vector>

#include "apps/app_type.hpp"
#include "core/single_app_study.hpp"
#include "study/context.hpp"
#include "study/platform_params.hpp"
#include "study/registry.hpp"

namespace {
using namespace xres;

int run(study::StudyContext& ctx) {
  const auto trials = ctx.params().u32("trials");
  const std::uint64_t seed = ctx.seed();
  const TrialExecutor executor = ctx.make_executor();
  const AppType type = app_type_by_name(ctx.params().str("type"));
  study::ObsCollector& collector = ctx.collector();
  study::RecoveryCoordinator& coordinator = ctx.recovery();

  std::printf("Extension: semi-blocking checkpointing, application %s, MTBF 10 y\n\n",
              type.name.c_str());

  Table table{{"system share", "blocking CR", "overlap 50%", "overlap 90%"}};
  for (double share : {0.10, 0.25, 0.50, 1.00}) {
    const auto nodes = static_cast<std::uint32_t>(share * 120000.0);
    std::vector<std::string> row{fmt_percent(share, 0)};
    struct Cell {
      TechniqueKind kind;
      double rate;
    };
    int column = 0;
    for (const Cell cell : {Cell{TechniqueKind::kCheckpointRestart, 0.0},
                            Cell{TechniqueKind::kSemiBlockingCheckpoint, 0.5},
                            Cell{TechniqueKind::kSemiBlockingCheckpoint, 0.9}}) {
      SingleAppTrialConfig config;
      study::apply_platform_params(config.machine, ctx.params());
      config.app = AppSpec{type, nodes, 1440};
      config.technique = cell.kind;
      config.resilience.semi_blocking_work_rate = cell.rate;
      std::vector<TrialSpec> specs;
      specs.reserve(trials);
      for (std::uint32_t t = 0; t < trials; ++t) {
        specs.push_back(TrialSpec{config, {static_cast<std::uint64_t>(column), t}});
      }
      RunningStats eff;
      const std::string label =
          fmt_percent(share, 0) +
          (cell.rate == 0.0 ? " blocking"
                            : " overlap " + fmt_percent(cell.rate, 0));
      for (const ExecutionResult& r :
           collector.run_batch(executor, seed, specs, label, coordinator)) {
        eff.add(r.efficiency);
      }
      row.push_back(fmt_mean_std(eff.mean(), eff.stddev()));
      ++column;
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_text().c_str());
  if (coordinator.interrupted()) return coordinator.finish();
  collector.finish();
  std::printf("(overlap reduces the blocked fraction of each Eq.-3 checkpoint; at\n"
              " 90%% overlap checkpointing costs little even at exascale)\n");
  return coordinator.finish();
}

study::StudyDefinition make() {
  study::StudyDefinition def;
  def.name = "ext_semi_blocking";
  def.group = study::StudyGroup::kExtension;
  def.description =
      "blocking vs. semi-blocking checkpoint/restart across application sizes";
  def.summary = "ext_semi_blocking — blocking vs semi-blocking checkpointing";
  def.options.default_seed = 19;
  def.params.integer("trials", "trials per cell", 40).min(1);
  def.params.text("type", "application type (Table I)", "A32");
  def.run = run;
  return def;
}

const study::Registration registered{make()};

}  // namespace
