#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/check.hpp"

namespace xres {

CliParser::CliParser(std::string program_summary) : summary_{std::move(program_summary)} {
  add_flag("--help", "print this help text and exit");
}

void CliParser::add_flag(const std::string& key, const std::string& help) {
  XRES_CHECK(find(key) == nullptr, "duplicate option: " + key);
  options_.push_back(Option{key, help, "", /*is_flag=*/true, false});
}

void CliParser::add_option(const std::string& key, const std::string& help,
                           const std::string& default_value) {
  XRES_CHECK(find(key) == nullptr, "duplicate option: " + key);
  options_.push_back(Option{key, help, default_value, /*is_flag=*/false, false});
}

CliParser::Option* CliParser::find(const std::string& key) {
  for (auto& opt : options_) {
    if (opt.key == key) return &opt;
  }
  return nullptr;
}

bool CliParser::has_option(const std::string& key) const {
  for (const auto& opt : options_) {
    if (opt.key == key) return true;
  }
  return false;
}

const CliParser::Option& CliParser::get(const std::string& key) const {
  for (const auto& opt : options_) {
    if (opt.key == key) return opt;
  }
  XRES_CHECK(false, "undeclared option queried: " + key);
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string key = arg;
    std::optional<std::string> inline_value;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      key = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
    }
    Option* opt = find(key);
    XRES_CHECK(opt != nullptr, "unknown option: " + key + " (try --help)");
    if (opt->is_flag) {
      XRES_CHECK(!inline_value.has_value(), "flag does not take a value: " + key);
      opt->flag_set = true;
    } else if (inline_value.has_value()) {
      opt->value = *inline_value;
    } else {
      XRES_CHECK(i + 1 < argc, "option needs a value: " + key);
      opt->value = argv[++i];
    }
  }
  if (flag("--help")) {
    std::fputs(help_text().c_str(), stdout);
    return false;
  }
  return true;
}

bool CliParser::parse_or_exit(int argc, const char* const* argv) {
  try {
    return parse(argc, argv);
  } catch (const CheckError& e) {
    // CheckError prefixes its message with "check failed: <expr> at
    // <file>:<line> — "; a mistyped flag deserves just the human part.
    std::string message = e.what();
    if (const std::size_t sep = message.find(" — "); sep != std::string::npos) {
      message = message.substr(sep + std::string{" — "}.size());
    }
    usage_error(message);
  }
}

void CliParser::usage_error(const std::string& message) {
  std::fprintf(stderr, "error: %s\n(run with --help for usage)\n", message.c_str());
  std::exit(kExitUsage);
}

bool CliParser::flag(const std::string& key) const {
  const Option& opt = get(key);
  XRES_CHECK(opt.is_flag, "option is not a flag: " + key);
  return opt.flag_set;
}

std::string CliParser::str(const std::string& key) const {
  const Option& opt = get(key);
  XRES_CHECK(!opt.is_flag, "flag has no value: " + key);
  return opt.value;
}

std::int64_t CliParser::integer(const std::string& key) const {
  const std::string v = str(key);
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  XRES_CHECK(end != nullptr && *end == '\0' && !v.empty(),
             "option " + key + " expects an integer, got '" + v + "'");
  return parsed;
}

double CliParser::real(const std::string& key) const {
  const std::string v = str(key);
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  XRES_CHECK(end != nullptr && *end == '\0' && !v.empty(),
             "option " + key + " expects a number, got '" + v + "'");
  return parsed;
}

void add_threads_option(CliParser& cli) {
  cli.add_option("--threads", "trial worker threads: 'auto' (all hardware threads) "
                 "or a positive count; results are thread-count-invariant", "auto");
}

unsigned parse_threads_option(const CliParser& cli) {
  const std::string v = cli.str("--threads");
  if (v == "auto") return 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  if (v.empty() || end == nullptr || *end != '\0' || parsed <= 0) {
    CliParser::usage_error("--threads expects 'auto' or a positive integer, got '" + v +
                           "'");
  }
  return static_cast<unsigned>(parsed);
}

std::string CliParser::help_text() const {
  std::string out = summary_ + "\n\noptions:\n";
  for (const auto& opt : options_) {
    out += "  " + opt.key;
    if (!opt.is_flag) out += " <value> (default: " + (opt.value.empty() ? "''" : opt.value) + ")";
    out += "\n      " + opt.help + "\n";
  }
  return out;
}

}  // namespace xres
