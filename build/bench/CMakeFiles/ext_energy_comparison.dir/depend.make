# Empty dependencies file for ext_energy_comparison.
# This may be replaced when dependencies are built.
