// Property tests: the runtime's accounting invariants must survive
// arbitrary failure storms for every technique. Parameterized over seeds
// and techniques; failures are injected at an aggressive rate relative to
// the plan's checkpoint costs.

#include <gtest/gtest.h>

#include "core/single_app_study.hpp"
#include "resilience/planner.hpp"
#include "util/barchart.hpp"

namespace xres {
namespace {

struct StormCase {
  TechniqueKind technique;
  std::uint64_t seed;

  friend void PrintTo(const StormCase& c, std::ostream* os) {
    *os << to_string(c.technique) << "/seed" << c.seed;
  }
};

class RuntimeFailureStorm : public ::testing::TestWithParam<StormCase> {};

TEST_P(RuntimeFailureStorm, AccountingInvariantsHold) {
  const auto [technique, seed] = GetParam();

  SingleAppTrialConfig config;
  config.app = AppSpec{app_type_by_name("C64"), 30000, 360};  // 6 h baseline
  config.technique = technique;
  // Very unreliable machine: MTBF 6 months per node.
  config.resilience.node_mtbf = Duration::years(0.5);
  config.resilience.max_slowdown = 50.0;

  const ExecutionResult r = run_trial(config, seed);
  const ExecutionPlan plan =
      make_plan(technique, config.app, config.machine, config.resilience);

  // 1. Phase buckets partition the wall time.
  const double buckets = r.time_working.to_seconds() + r.time_checkpointing.to_seconds() +
                         r.time_restarting.to_seconds() + r.time_recovering.to_seconds();
  EXPECT_NEAR(buckets, r.wall_time.to_seconds(), 1e-6);

  // 2. Efficiency is a probability; completion implies positive efficiency.
  EXPECT_GE(r.efficiency, 0.0);
  EXPECT_LE(r.efficiency, 1.0);
  if (r.completed) {
    EXPECT_GT(r.efficiency, 0.0);
    // Wall time is at least the stretched work target.
    EXPECT_GE(r.wall_time.to_seconds() + 1e-6, plan.work_target.to_seconds());
  } else {
    EXPECT_DOUBLE_EQ(r.efficiency, 0.0);
    // Abort must come from the wall-time cap.
    EXPECT_NEAR(r.wall_time.to_seconds(), plan.max_wall_time.to_seconds(), 1e-6);
  }

  // 3. Rework never exceeds total working time, and only rollback
  //    techniques accumulate it.
  EXPECT_LE(r.rework.to_seconds(), r.time_working.to_seconds() + 1e-6);
  if (!plan.rollback_on_failure) {
    EXPECT_EQ(r.rollbacks, 0U);
    EXPECT_DOUBLE_EQ(r.rework.to_seconds(), 0.0);
  }

  // 4. Masked failures only exist for redundancy / recovery thinning.
  EXPECT_LE(r.failures_masked, r.failures_seen);
  EXPECT_LE(r.rollbacks, r.failures_seen);
  if (plan.replication_degree == 1.0 && plan.rollback_on_failure) {
    EXPECT_EQ(r.failures_masked, 0U);
    EXPECT_EQ(r.rollbacks, r.failures_seen);
  }

  // 5. Energy integral is bounded by the allocation.
  EXPECT_LE(r.node_seconds,
            static_cast<double>(plan.physical_nodes) * r.wall_time.to_seconds() + 1e-3);
  EXPECT_GT(r.node_seconds, 0.0);
}

std::vector<StormCase> storm_cases() {
  std::vector<StormCase> cases;
  for (TechniqueKind kind : {TechniqueKind::kCheckpointRestart, TechniqueKind::kMultilevel,
                             TechniqueKind::kParallelRecovery,
                             TechniqueKind::kRedundancyPartial,
                             TechniqueKind::kRedundancyFull}) {
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
      cases.push_back(StormCase{kind, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Storms, RuntimeFailureStorm, ::testing::ValuesIn(storm_cases()));

TEST(BarChart, RendersGroupedBars) {
  BarChart chart{{"CR", "PR"}};
  chart.add_category("10%", {0.5, 1.0});
  chart.add_category("50%", {0.25, 0.75});
  const std::string out = chart.render(8, 1.0);
  // Full-scale bar has 8 columns, half-scale 4.
  EXPECT_NE(out.find("CR |#### 0.500"), std::string::npos);
  EXPECT_NE(out.find("PR |######## 1.000"), std::string::npos);
  EXPECT_NE(out.find("50% CR |## 0.250"), std::string::npos);
  EXPECT_EQ(chart.category_count(), 2U);
}

TEST(BarChart, AutoScaleAndValidation) {
  BarChart chart{{"a"}};
  chart.add_category("x", {5.0});
  const std::string out = chart.render(10);  // auto-scale to 5.0
  EXPECT_NE(out.find("########## 5.000"), std::string::npos);
  EXPECT_THROW(chart.add_category("bad", {1.0, 2.0}), CheckError);
  EXPECT_THROW(chart.add_category("neg", {-1.0}), CheckError);
  EXPECT_THROW(BarChart{std::vector<std::string>{}}, CheckError);
}

}  // namespace
}  // namespace xres
