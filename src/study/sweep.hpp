#pragma once

/// \file sweep.hpp
/// `xres sweep`: fan one study across the cross-product of parameter
/// bindings. Each grid point is one suite cell (suite.hpp) — stdout
/// captured, metrics/journal per cell, everything checksummed into the
/// shared manifest — so a sweep inherits the suite's determinism and
/// --resume contracts unchanged.
///
/// Grid order is deterministic: axes fan out in declaration order with the
/// last axis varying fastest, so `--axis a=1,2 --axis b=x,y` yields
/// a=1/b=x, a=1/b=y, a=2/b=x, a=2/b=y.

#include <string>
#include <utility>
#include <vector>

#include "study/registry.hpp"
#include "study/suite.hpp"

namespace xres::study {

/// One sweep dimension: a schema parameter and the values to visit, in
/// the order given.
struct SweepAxis {
  std::string key;
  std::vector<std::string> values;
};

/// Parse an `--axis key=v1,v2,...` argument. Throws CheckError on
/// malformed text (no '=', empty key/value, repeated value).
[[nodiscard]] SweepAxis parse_axis(const std::string& text);

/// One grid point: its artifact label and the full bindings (base `--set`
/// bindings first, then one value per axis).
struct SweepPoint {
  std::string name;
  std::vector<std::pair<std::string, std::string>> bindings;
};

/// A validated, fully-expanded sweep. `def` must outlive the plan.
struct SweepPlan {
  const StudyDefinition* def{nullptr};
  std::vector<SweepAxis> axes;
  std::vector<SweepPoint> points;
};

/// Validate \p axes and \p base_bindings against the study's schema and
/// expand the cross-product. Throws CheckError on an unknown key, an
/// out-of-range value, a duplicate axis, or an empty/oversized grid.
[[nodiscard]] SweepPlan plan_sweep(
    const StudyDefinition& def, std::vector<SweepAxis> axes,
    const std::vector<std::pair<std::string, std::string>>& base_bindings = {});

/// Run every grid point through the suite runner (manifest extras record
/// the study and axes). Returns 0 or the first failing cell's exit code.
[[nodiscard]] int run_sweep(const SweepPlan& plan, const SuiteOptions& options);

/// The `xres sweep` subcommand: argv[0] is the subcommand name. Usage
/// errors (unknown axis key, malformed axis, duplicate axis, out-of-range
/// value, missing --out-dir) exit 2 before any cell runs; an unknown study
/// name exits 1 like `xres run`.
[[nodiscard]] int sweep_main(int argc, const char* const* argv);

}  // namespace xres::study
