#pragma once

/// \file machine.hpp
/// The simulated machine: hardware spec + node allocation + the
/// node-to-owner index that failure injection uses to find its victim.
///
/// "Owners" are opaque 64-bit identifiers (the workload layer uses
/// application ids). Each owner holds at most one contiguous allocation,
/// matching the paper's model of one node range per executing application.

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "platform/allocator.hpp"
#include "platform/spec.hpp"
#include "util/rng.hpp"

namespace xres {

/// Identifier of an allocation owner (an executing application).
enum class OwnerId : std::uint64_t {};

class Machine {
 public:
  explicit Machine(MachineSpec spec);

  [[nodiscard]] const MachineSpec& spec() const { return spec_; }

  /// Allocate \p count contiguous nodes for \p owner. Returns nullopt when
  /// the machine cannot satisfy the request. An owner may hold only one
  /// allocation at a time.
  std::optional<NodeRange> allocate(std::uint32_t count, OwnerId owner);

  /// Release \p owner's allocation. Throws if the owner holds none.
  void release(OwnerId owner);

  /// Topology-aware placement: subsequent allocations minimize the number
  /// of distinct \p group_size-aligned node groups (fat-tree leaf
  /// switches) they span instead of plain first fit. 0 or 1 restores the
  /// default policy.
  void set_placement_group(std::uint32_t group_size) { placement_group_ = group_size; }
  [[nodiscard]] std::uint32_t placement_group() const { return placement_group_; }

  /// The allocation currently held by \p owner, if any.
  [[nodiscard]] std::optional<NodeRange> allocation_of(OwnerId owner) const;

  [[nodiscard]] std::uint32_t busy_nodes() const { return allocator_.busy_count(); }
  [[nodiscard]] std::uint32_t idle_nodes() const { return allocator_.free_count(); }
  [[nodiscard]] std::uint32_t capacity() const { return allocator_.capacity(); }
  [[nodiscard]] std::uint32_t largest_free_block() const {
    return allocator_.largest_free_block();
  }

  /// Number of active allocations.
  [[nodiscard]] std::size_t allocation_count() const { return by_owner_.size(); }

  /// A failed node and the owner of the application running on it.
  struct Victim {
    std::uint32_t node{0};
    OwnerId owner{};
  };

  /// Select a node uniformly at random among *busy* nodes (the paper's
  /// failure-location model: idle nodes do not fail the workload). Returns
  /// nullopt when no node is busy.
  [[nodiscard]] std::optional<Victim> pick_random_busy_node(Pcg32& rng) const;

  /// Owners whose allocations intersect the node range [first, first +
  /// count). Used by the correlated-failure extension, where one physical
  /// event (a cabinet or PSU failure) strikes a contiguous block of nodes.
  [[nodiscard]] std::vector<OwnerId> owners_in_range(std::uint32_t first,
                                                     std::uint32_t count) const;

  /// Verify allocator and index invariants. Throws CheckError on violation.
  void validate() const;

 private:
  MachineSpec spec_;
  NodeAllocator allocator_;
  std::uint32_t placement_group_{0};
  /// Allocation index, ordered by first node (for victim lookup).
  std::map<std::uint32_t, std::pair<std::uint32_t, OwnerId>> by_first_node_;
  std::map<OwnerId, NodeRange> by_owner_;
};

}  // namespace xres
