file(REMOVE_RECURSE
  "libxres_platform.a"
)
