#include "failure/process.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace xres {

AppFailureProcess::AppFailureProcess(Simulation& sim, Rate rate,
                                     const SeverityModel& severity,
                                     FailureDistribution dist, Pcg32 rng,
                                     Callback on_failure)
    : sim_{sim},
      rate_{rate},
      severity_{severity},
      dist_{dist},
      rng_{rng},
      on_failure_{std::move(on_failure)} {
  XRES_CHECK(static_cast<bool>(on_failure_), "failure callback must be non-empty");
}

AppFailureProcess::~AppFailureProcess() { stop(); }

void AppFailureProcess::start() {
  XRES_CHECK(!active_, "failure process already started");
  active_ = true;
  schedule_next();
}

void AppFailureProcess::stop() {
  if (!active_) return;
  active_ = false;
  sim_.cancel(pending_);
}

void AppFailureProcess::schedule_next() {
  const Duration gap = dist_.draw(rng_, rate_);
  if (!gap.is_finite()) return;  // zero rate: no failures ever
  pending_ = sim_.schedule_after(gap, [this] { deliver(); });
}

void AppFailureProcess::deliver() {
  if (!active_) return;
  ++delivered_;
  const Failure failure{sim_.now(), severity_.sample(rng_)};
  // Schedule the next arrival before delivering: the callback may stop us.
  schedule_next();
  on_failure_(failure);
}

void BurstFailureConfig::validate() const {
  XRES_CHECK(probability >= 0.0 && probability <= 1.0,
             "burst probability must be in [0, 1]");
  XRES_CHECK(width > 0, "burst width must be positive");
}

SystemFailureProcess::SystemFailureProcess(Simulation& sim, const Machine& machine,
                                           Duration node_mtbf,
                                           const SeverityModel& severity, Pcg32 rng,
                                           Callback on_failure,
                                           BurstFailureConfig bursts)
    : sim_{sim},
      machine_{machine},
      node_mtbf_{node_mtbf},
      severity_{severity},
      rng_{rng},
      on_failure_{std::move(on_failure)},
      bursts_config_{bursts} {
  XRES_CHECK(node_mtbf_ > Duration::zero(), "node MTBF must be positive");
  XRES_CHECK(static_cast<bool>(on_failure_), "failure callback must be non-empty");
  bursts_config_.validate();
}

SystemFailureProcess::~SystemFailureProcess() { stop(); }

Rate SystemFailureProcess::current_rate() const {
  // Eq. 2: λ_s = N_s / M_n, with N_s the number of non-idle nodes.
  return Rate::one_per(node_mtbf_) * static_cast<double>(machine_.busy_nodes());
}

void SystemFailureProcess::start() {
  XRES_CHECK(!active_, "failure process already started");
  active_ = true;
  schedule_next();
}

void SystemFailureProcess::stop() {
  if (!active_) return;
  active_ = false;
  sim_.cancel(pending_);
}

void SystemFailureProcess::notify_utilization_changed() {
  if (!active_) return;
  // Memoryless re-draw at the new rate (exponential gaps only; the system
  // process intentionally does not support Weibull, see distribution.hpp).
  sim_.cancel(pending_);
  schedule_next();
}

void SystemFailureProcess::schedule_next() {
  const Rate rate = current_rate();
  if (rate == Rate::zero()) return;  // nothing busy: next draw on utilization change
  const Duration gap = rng_.exponential(rate);
  pending_ = sim_.schedule_after(gap, [this] { deliver(); });
}

void SystemFailureProcess::deliver() {
  if (!active_) return;
  auto victim = machine_.pick_random_busy_node(rng_);
  // Utilization may have dropped to zero between scheduling and delivery
  // only via notify_utilization_changed(), which re-draws; but guard anyway.
  if (!victim.has_value()) {
    schedule_next();
    return;
  }
  ++delivered_;
  schedule_next();
  if (bursts_config_.probability > 0.0 && rng_.bernoulli(bursts_config_.probability)) {
    deliver_burst(*victim);
    return;
  }
  const Failure failure{sim_.now(), severity_.sample(rng_)};
  on_failure_(failure, *victim);
}

void SystemFailureProcess::deliver_burst(const Machine::Victim& origin) {
  ++bursts_;
  // The block starts at the sampled victim and extends upward, clamped to
  // the machine edge. Burst severities are node losses or worse.
  const std::uint32_t width =
      std::min(bursts_config_.width, machine_.capacity() - origin.node);
  SeverityLevel severity = severity_.sample(rng_);
  if (severity_.level_count() >= 2 && severity < 2) severity = 2;
  const Failure failure{sim_.now(), severity};
  for (OwnerId owner : machine_.owners_in_range(origin.node, width)) {
    on_failure_(failure, Machine::Victim{origin.node, owner});
  }
}

}  // namespace xres
