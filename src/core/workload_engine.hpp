#pragma once

/// \file workload_engine.hpp
/// Discrete-event execution of an arrival pattern on the simulated machine
/// (paper Sections VI–VII): applications arrive, are mapped by a resource
/// management heuristic, execute under a resilience technique while the
/// machine injects failures, and are dropped when they miss their
/// deadlines. The headline metric is the fraction of dropped applications.

#include <cstdint>
#include <map>

#include "apps/workload.hpp"
#include "core/occupancy.hpp"
#include "core/policy.hpp"
#include "platform/spec.hpp"
#include "resilience/config.hpp"
#include "rm/scheduler.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace xres {

namespace obs {
class TrialObs;
}

struct WorkloadEngineConfig {
  MachineSpec machine{MachineSpec::exascale()};
  ResilienceConfig resilience{};
  TechniquePolicy policy{TechniquePolicy::fixed_technique(TechniqueKind::kCheckpointRestart)};
  SchedulerKind scheduler{SchedulerKind::kFcfs};
  /// Seed for the engine's stochastic elements (failure process, random
  /// scheduler, runtime internals) — independent of the pattern's seed.
  std::uint64_t seed{1};

  /// Record each job's node tenancy for occupancy charts (cheap; off by
  /// default only to keep results lean in large sweeps).
  bool record_occupancy{false};

  /// Extension: spatially correlated failures — with this probability a
  /// failure event strikes `burst_width` contiguous nodes (cabinet/PSU
  /// fault), hitting every intersecting application. 0 reproduces the
  /// paper's independent-failure model.
  double burst_probability{0.0};
  std::uint32_t burst_width{64};

  /// Extension: model machine-wide PFS bandwidth contention. When enabled,
  /// PFS-backed checkpoints/restarts from concurrent applications share a
  /// processor-sharing channel of capacity pfs_gateways × B_N × N_S (each
  /// application individually capped at its Eq.-3 rate B_N × N_S).
  /// Mutually exclusive with a non-flat machine.platform.model, which
  /// routes the same transfers through the queued PfsDevice instead.
  bool model_pfs_contention{false};
  std::uint32_t pfs_gateways{4};

  /// Optional observation context (metrics channel; obs/trial_obs.hpp) for
  /// this pattern run: job counters plus the per-runtime event metrics.
  /// Must outlive the run and is touched only by the running thread. Null
  /// disables observation at pointer-test cost.
  obs::TrialObs* obs{nullptr};
};

struct WorkloadRunResult {
  std::uint32_t total_jobs{0};
  std::uint32_t completed{0};
  std::uint32_t dropped{0};
  /// dropped / total: the Figures 4–5 metric.
  double dropped_fraction{0.0};
  /// Drop breakdown: never started (deadline passed in the queue, or
  /// proactively removed by the slack scheduler) vs. aborted mid-run.
  std::uint32_t dropped_before_start{0};
  std::uint32_t dropped_while_running{0};
  /// wall time / baseline for jobs that completed (resilience stretch +
  /// failure delays; 1.0 is delay-free).
  Summary completed_slowdown{};
  /// Hours between arrival and the mapping that started the job.
  Summary queue_wait_hours{};
  std::uint64_t failures_injected{0};
  /// Simulated time at which the last job left the system.
  Duration makespan{};
  /// Time-averaged fraction of machine nodes busy.
  double mean_utilization{0.0};
  /// How often Resilience Selection picked each technique (selection mode).
  std::map<TechniqueKind, std::uint32_t> selection_counts;
  /// Job tenancies (populated when record_occupancy is set).
  OccupancyLog occupancy;

  /// Queued-PFS-device accounting (non-flat platform models only):
  /// completed device transfers, their summed wall time (submit →
  /// completion, including queueing and link caps) and their summed
  /// closed-form Eq.-3 nominal time. measured / nominal is the run's
  /// emergent divergence from the analytic contention model.
  std::uint64_t pfs_transfers{0};
  double pfs_measured_s{0.0};
  double pfs_nominal_s{0.0};
};

/// Execute one pattern to completion.
[[nodiscard]] WorkloadRunResult run_workload(const WorkloadEngineConfig& config,
                                             const ArrivalPattern& pattern);

}  // namespace xres
