#include "core/report.hpp"

#include <fstream>

#include "util/check.hpp"

namespace xres {

StudyReport::StudyReport(std::string title) : title_{std::move(title)} {
  XRES_CHECK(!title_.empty(), "report needs a title");
}

void StudyReport::add_paragraph(const std::string& text) { paragraphs_.push_back(text); }

void StudyReport::add_config(const std::string& key, const std::string& value) {
  XRES_CHECK(!key.empty(), "config key must be non-empty");
  config_.emplace_back(key, value);
}

void StudyReport::add_table(const std::string& caption, Table table) {
  tables_.push_back(CaptionedTable{caption, std::move(table)});
}

void StudyReport::add_metrics(const std::string& caption, const obs::MetricSet& metrics) {
  add_table(caption.empty() ? "Metrics" : caption, metrics.to_table());
}

std::string StudyReport::to_markdown() const {
  std::string out = "# " + title_ + "\n\n";
  if (!config_.empty()) {
    out += "## Configuration\n\n";
    for (const auto& [key, value] : config_) {
      out += "* **" + key + "**: " + value + "\n";
    }
    out += '\n';
  }
  for (const std::string& paragraph : paragraphs_) {
    out += paragraph;
    out += "\n\n";
  }
  for (const CaptionedTable& entry : tables_) {
    if (!entry.caption.empty()) out += "## " + entry.caption + "\n\n";
    out += entry.table.to_markdown();
    out += '\n';
  }
  return out;
}

void StudyReport::write(const std::string& path) const {
  std::ofstream f{path};
  XRES_CHECK(f.good(), "cannot open report file for writing: " + path);
  f << to_markdown();
  XRES_CHECK(f.good(), "failed writing report file: " + path);
}

}  // namespace xres
