
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/adaptive_interval_test.cpp" "tests/CMakeFiles/xres_tests.dir/adaptive_interval_test.cpp.o" "gcc" "tests/CMakeFiles/xres_tests.dir/adaptive_interval_test.cpp.o.d"
  "/root/repo/tests/apps_test.cpp" "tests/CMakeFiles/xres_tests.dir/apps_test.cpp.o" "gcc" "tests/CMakeFiles/xres_tests.dir/apps_test.cpp.o.d"
  "/root/repo/tests/burst_failure_test.cpp" "tests/CMakeFiles/xres_tests.dir/burst_failure_test.cpp.o" "gcc" "tests/CMakeFiles/xres_tests.dir/burst_failure_test.cpp.o.d"
  "/root/repo/tests/failure_replay_test.cpp" "tests/CMakeFiles/xres_tests.dir/failure_replay_test.cpp.o" "gcc" "tests/CMakeFiles/xres_tests.dir/failure_replay_test.cpp.o.d"
  "/root/repo/tests/failure_test.cpp" "tests/CMakeFiles/xres_tests.dir/failure_test.cpp.o" "gcc" "tests/CMakeFiles/xres_tests.dir/failure_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/xres_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/xres_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/occupancy_test.cpp" "tests/CMakeFiles/xres_tests.dir/occupancy_test.cpp.o" "gcc" "tests/CMakeFiles/xres_tests.dir/occupancy_test.cpp.o.d"
  "/root/repo/tests/platform_test.cpp" "tests/CMakeFiles/xres_tests.dir/platform_test.cpp.o" "gcc" "tests/CMakeFiles/xres_tests.dir/platform_test.cpp.o.d"
  "/root/repo/tests/report_test.cpp" "tests/CMakeFiles/xres_tests.dir/report_test.cpp.o" "gcc" "tests/CMakeFiles/xres_tests.dir/report_test.cpp.o.d"
  "/root/repo/tests/resilience_interval_test.cpp" "tests/CMakeFiles/xres_tests.dir/resilience_interval_test.cpp.o" "gcc" "tests/CMakeFiles/xres_tests.dir/resilience_interval_test.cpp.o.d"
  "/root/repo/tests/resilience_planner_test.cpp" "tests/CMakeFiles/xres_tests.dir/resilience_planner_test.cpp.o" "gcc" "tests/CMakeFiles/xres_tests.dir/resilience_planner_test.cpp.o.d"
  "/root/repo/tests/resilience_renewal_test.cpp" "tests/CMakeFiles/xres_tests.dir/resilience_renewal_test.cpp.o" "gcc" "tests/CMakeFiles/xres_tests.dir/resilience_renewal_test.cpp.o.d"
  "/root/repo/tests/rm_test.cpp" "tests/CMakeFiles/xres_tests.dir/rm_test.cpp.o" "gcc" "tests/CMakeFiles/xres_tests.dir/rm_test.cpp.o.d"
  "/root/repo/tests/runtime_property_test.cpp" "tests/CMakeFiles/xres_tests.dir/runtime_property_test.cpp.o" "gcc" "tests/CMakeFiles/xres_tests.dir/runtime_property_test.cpp.o.d"
  "/root/repo/tests/runtime_test.cpp" "tests/CMakeFiles/xres_tests.dir/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/xres_tests.dir/runtime_test.cpp.o.d"
  "/root/repo/tests/runtime_timeline_test.cpp" "tests/CMakeFiles/xres_tests.dir/runtime_timeline_test.cpp.o" "gcc" "tests/CMakeFiles/xres_tests.dir/runtime_timeline_test.cpp.o.d"
  "/root/repo/tests/semi_blocking_test.cpp" "tests/CMakeFiles/xres_tests.dir/semi_blocking_test.cpp.o" "gcc" "tests/CMakeFiles/xres_tests.dir/semi_blocking_test.cpp.o.d"
  "/root/repo/tests/shared_channel_test.cpp" "tests/CMakeFiles/xres_tests.dir/shared_channel_test.cpp.o" "gcc" "tests/CMakeFiles/xres_tests.dir/shared_channel_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/xres_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/xres_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/swf_test.cpp" "tests/CMakeFiles/xres_tests.dir/swf_test.cpp.o" "gcc" "tests/CMakeFiles/xres_tests.dir/swf_test.cpp.o.d"
  "/root/repo/tests/umbrella_test.cpp" "tests/CMakeFiles/xres_tests.dir/umbrella_test.cpp.o" "gcc" "tests/CMakeFiles/xres_tests.dir/umbrella_test.cpp.o.d"
  "/root/repo/tests/util_rng_test.cpp" "tests/CMakeFiles/xres_tests.dir/util_rng_test.cpp.o" "gcc" "tests/CMakeFiles/xres_tests.dir/util_rng_test.cpp.o.d"
  "/root/repo/tests/util_stats_test.cpp" "tests/CMakeFiles/xres_tests.dir/util_stats_test.cpp.o" "gcc" "tests/CMakeFiles/xres_tests.dir/util_stats_test.cpp.o.d"
  "/root/repo/tests/util_table_cli_test.cpp" "tests/CMakeFiles/xres_tests.dir/util_table_cli_test.cpp.o" "gcc" "tests/CMakeFiles/xres_tests.dir/util_table_cli_test.cpp.o.d"
  "/root/repo/tests/util_units_test.cpp" "tests/CMakeFiles/xres_tests.dir/util_units_test.cpp.o" "gcc" "tests/CMakeFiles/xres_tests.dir/util_units_test.cpp.o.d"
  "/root/repo/tests/workload_engine_test.cpp" "tests/CMakeFiles/xres_tests.dir/workload_engine_test.cpp.o" "gcc" "tests/CMakeFiles/xres_tests.dir/workload_engine_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xres_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/xres_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/resilience/CMakeFiles/xres_resilience.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/xres_failure.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xres_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rm/CMakeFiles/xres_rm.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/xres_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/xres_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/xres_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
