#pragma once

/// \file deadline.hpp
/// Cooperative per-trial watchdog. A simulated trial that diverges (a model
/// bug driving an unbounded event loop) would otherwise hang its worker
/// thread forever; std::thread offers no safe preemption, so the timeout is
/// cooperative instead: the executor arms a thread-local wall-clock
/// deadline around each trial and the discrete-event engine polls it every
/// few thousand events (sim/simulation.cpp). An expired deadline throws
/// `TrialTimeoutError`, which unwinds the trial cleanly and lands in the
/// executor's retry/quarantine logic (core/executor.hpp).
///
/// Disarmed (the default, and whenever no `ScopedDeadline` is live) the
/// poll is a single thread-local load — cheap enough for the engine's hot
/// loop.

#include <stdexcept>
#include <string>

namespace xres {

/// Thrown by deadline_poll() when the armed deadline has passed. Derives
/// from std::runtime_error (NOT CheckError): a timeout is an operational
/// condition the executor handles, not a programming error.
class TrialTimeoutError final : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Arm a wall-clock deadline \p seconds from now on the calling thread.
/// Nesting keeps the tighter (earlier) deadline; destruction restores the
/// previous one. `seconds <= 0` arms nothing (a scoped no-op).
class ScopedDeadline {
 public:
  explicit ScopedDeadline(double seconds);
  ~ScopedDeadline();

  ScopedDeadline(const ScopedDeadline&) = delete;
  ScopedDeadline& operator=(const ScopedDeadline&) = delete;

 private:
  long long previous_;  ///< prior deadline (steady-clock ns since epoch; 0 = none)
};

/// True when a deadline is armed on the calling thread.
[[nodiscard]] bool deadline_armed();

/// Throw TrialTimeoutError if the calling thread's armed deadline has
/// passed; no-op when disarmed.
void deadline_poll();

}  // namespace xres
