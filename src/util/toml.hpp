#pragma once

/// \file toml.hpp
/// Minimal hand-rolled TOML reader for study spec files. Supports the
/// subset specs actually use — `[table]` headers, bare/quoted keys, basic
/// and literal strings, integers, floats, booleans, single-line and
/// bracket-continued arrays, `#` comments — and rejects everything else
/// with a line-numbered error. This is deliberately not a general TOML
/// library: no dotted keys, no arrays-of-tables, no dates, no inline
/// tables. Scalars keep their raw source text so the study parameter
/// machinery can validate and store values exactly as written.

#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xres::util {

/// Thrown on malformed input; messages start with "line N: ".
class TomlParseError final : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One parsed TOML value. Scalar kinds keep the raw token text (`text`);
/// strings store their decoded content there instead.
class TomlValue {
 public:
  enum class Kind { kString, kInteger, kFloat, kBool, kArray };

  Kind kind{Kind::kString};
  std::string text;                ///< decoded string, or raw scalar token
  std::vector<TomlValue> items;    ///< elements when kind == kArray

  [[nodiscard]] bool is_scalar() const { return kind != Kind::kArray; }
};

/// A `key = value` binding with the line it came from (for diagnostics).
struct TomlEntry {
  std::string key;
  TomlValue value;
  int line{0};
};

/// A `[name]` table (the implicit root table has an empty name).
struct TomlTable {
  std::string name;
  int line{0};
  std::vector<TomlEntry> entries;

  [[nodiscard]] const TomlEntry* find(std::string_view key) const;
};

/// A parsed document: the root table followed by named tables in
/// declaration order. Duplicate tables and duplicate keys within a table
/// are rejected at parse time.
class TomlDocument {
 public:
  /// Parse \p text; throws TomlParseError with "line N: ..." messages.
  [[nodiscard]] static TomlDocument parse(std::string_view text);

  [[nodiscard]] const std::vector<TomlTable>& tables() const { return tables_; }
  [[nodiscard]] const TomlTable* find(std::string_view name) const;

 private:
  std::vector<TomlTable> tables_;
};

}  // namespace xres::util
