// Ablation: compressed / incremental checkpoint images. The paper's
// Figure-3 collapse of checkpoint/restart at exascale stems from Eq.-3
// costs proportional to full application memory; this sweep shrinks the
// image (compression or incremental checkpointing, cf. the FTI/diskless
// lines of work the paper cites) and measures how much of the collapse a
// smaller image buys back.

#include <cstdio>

#include "apps/app_type.hpp"
#include "common.hpp"
#include "core/single_app_study.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace xres;
  CliParser cli{"ablation_checkpoint_compression — technique efficiency vs. "
                "checkpoint image size"};
  cli.add_option("--trials", "trials per cell", "40");
  cli.add_option("--mtbf-years", "node MTBF", "2.5");
  cli.add_option("--seed", "root RNG seed", "17");
  add_threads_option(cli);
  bench::add_obs_options(cli);
  bench::add_recovery_options(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  const auto trials = static_cast<std::uint32_t>(cli.integer("--trials"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("--seed"));
  const TrialExecutor executor{parse_threads_option(cli)};
  bench::ObsCollector collector{bench::read_obs_options(cli)};
  bench::RecoveryCoordinator coordinator{bench::read_recovery_options(cli),
                                         "ablation_checkpoint_compression", seed};

  std::printf("Ablation: checkpoint image compression at exascale\n");
  std::printf("application D64 @ 100%% of the machine, MTBF %.1f y, %u trials\n\n",
              cli.real("--mtbf-years"), trials);

  Table table{{"image size (xN_m)", "checkpoint-restart", "multilevel",
               "parallel-recovery"}};
  for (double ratio : {1.0, 0.5, 0.25, 0.1}) {
    std::vector<std::string> row{fmt_double(ratio, 2)};
    int column = 0;
    for (TechniqueKind kind : workload_techniques()) {
      SingleAppTrialConfig config;
      config.app = AppSpec{app_type_by_name("D64"), 120000, 1440};
      config.technique = kind;
      config.resilience.node_mtbf = Duration::years(cli.real("--mtbf-years"));
      config.resilience.checkpoint_compression = ratio;
      std::vector<TrialSpec> specs;
      specs.reserve(trials);
      for (std::uint32_t t = 0; t < trials; ++t) {
        specs.push_back(TrialSpec{config, {static_cast<std::uint64_t>(column), t}});
      }
      RunningStats eff;
      const std::string cell =
          "image x" + fmt_double(ratio, 2) + " " + to_string(kind);
      for (const ExecutionResult& r :
           collector.run_batch(executor, seed, specs, cell, coordinator)) {
        eff.add(r.efficiency);
      }
      row.push_back(fmt_mean_std(eff.mean(), eff.stddev()));
      ++column;
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_text().c_str());
  if (coordinator.interrupted()) return coordinator.finish();
  collector.finish();
  std::printf("(checkpoint/restart regains viability as images shrink; parallel\n"
              " recovery barely moves — its in-memory copies were already cheap)\n");
  return coordinator.finish();
}
