// Reproduces paper Figure 3: the Figure-2 study under degraded component
// reliability (node MTBF 2.5 years). Traditional checkpoint/restart
// collapses — at exascale it spends so long checkpointing and restarting
// that applications cannot complete.

#include "apps/app_type.hpp"
#include "study/figure.hpp"
#include "study/registry.hpp"

namespace {
using namespace xres;

int run(study::StudyContext& ctx) {
  EfficiencyStudyConfig config;
  config.app_type = app_type_by_name("D64");
  config.resilience.node_mtbf = Duration::years(2.5);
  return study::run_efficiency_figure(
      "Figure 3: efficiency vs. system share, application D64, MTBF 2.5 y",
      config, ctx);
}

study::StudyDefinition make() {
  study::StudyDefinition def;
  def.name = "fig3_efficiency_d64_mtbf2p5";
  def.group = study::StudyGroup::kFigure;
  def.description =
      "paper Figure 3: the Figure-2 study with node MTBF degraded to 2.5 years";
  def.summary =
      "fig3_efficiency_d64_mtbf2p5 — paper Figure 3: efficiency vs. "
      "application size for D64 with node MTBF reduced to 2.5 years.";
  def.journal_id = "Figure 3: efficiency vs. system share, application D64, MTBF 2.5 y";
  def.options.csv = true;
  def.options.chart = true;
  def.options.report = true;
  def.params.integer("trials", "trials per bar (paper: 200)", 200).min(1);
  def.params.text("surrogate",
                  "sim | analytic | auto — answer cells from the analytic "
                  "surrogate with a per-cell error bound (docs/STUDIES.md)",
                  "sim");
  def.run = run;
  return def;
}

const study::Registration registered{make()};

}  // namespace
