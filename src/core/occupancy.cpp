#include "core/occupancy.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace xres {

void OccupancyLog::record_start(JobId id, NodeRange nodes, TimePoint start) {
  XRES_CHECK(nodes.count > 0, "occupancy span needs nodes");
  for (const Open& open : open_) {
    XRES_CHECK(open.id != id, "job already has an open occupancy span");
  }
  open_.push_back(Open{id, nodes, start});
}

void OccupancyLog::record_end(JobId id, TimePoint end, bool completed) {
  auto it = std::find_if(open_.begin(), open_.end(),
                         [id](const Open& open) { return open.id == id; });
  XRES_CHECK(it != open_.end(), "job has no open occupancy span");
  XRES_CHECK(end >= it->start, "occupancy span ends before it starts");
  spans_.push_back(JobSpan{id, it->nodes, it->start, end, completed});
  open_.erase(it);
  std::sort(spans_.begin(), spans_.end(),
            [](const JobSpan& a, const JobSpan& b) { return a.start < b.start; });
}

double OccupancyLog::busy_node_seconds() const {
  double total = 0.0;
  for (const JobSpan& span : spans_) {
    total += static_cast<double>(span.nodes.count) * span.length().to_seconds();
  }
  return total;
}

std::string OccupancyLog::render(std::uint32_t machine_nodes, TimePoint horizon,
                                 std::size_t width, std::size_t rows) const {
  XRES_CHECK(machine_nodes > 0, "machine must have nodes");
  XRES_CHECK(width >= 8 && rows >= 2, "chart too small");
  const double horizon_s = horizon.to_seconds();
  XRES_CHECK(horizon_s > 0.0, "horizon must be positive");

  const double nodes_per_row = static_cast<double>(machine_nodes) / static_cast<double>(rows);
  const double seconds_per_col = horizon_s / static_cast<double>(width);

  // coverage[row][col] = occupied node-seconds within the cell.
  std::vector<std::vector<double>> coverage(rows, std::vector<double>(width, 0.0));
  for (const JobSpan& span : spans_) {
    const double t0 = span.start.to_seconds();
    const double t1 = std::min(span.end.to_seconds(), horizon_s);
    if (t1 <= t0) continue;
    const auto col0 = static_cast<std::size_t>(t0 / seconds_per_col);
    const auto col1 = std::min(
        width - 1, static_cast<std::size_t>(t1 / seconds_per_col));
    const double n0 = span.nodes.first;
    const double n1 = span.nodes.end();
    const auto row0 = static_cast<std::size_t>(n0 / nodes_per_row);
    const auto row1 = std::min(rows - 1, static_cast<std::size_t>((n1 - 1e-9) / nodes_per_row));
    for (std::size_t r = row0; r <= row1; ++r) {
      const double band_lo = static_cast<double>(r) * nodes_per_row;
      const double band_hi = band_lo + nodes_per_row;
      const double nodes_in_band = std::min(n1, band_hi) - std::max(n0, band_lo);
      if (nodes_in_band <= 0.0) continue;
      for (std::size_t c = col0; c <= col1; ++c) {
        const double cell_lo = static_cast<double>(c) * seconds_per_col;
        const double cell_hi = cell_lo + seconds_per_col;
        const double seconds_in_cell = std::min(t1, cell_hi) - std::max(t0, cell_lo);
        if (seconds_in_cell > 0.0) coverage[r][c] += nodes_in_band * seconds_in_cell;
      }
    }
  }

  static constexpr char kRamp[] = " .:-=#";
  const double cell_capacity = nodes_per_row * seconds_per_col;
  std::string out;
  out.reserve((width + 2) * rows + 64);
  for (std::size_t r = 0; r < rows; ++r) {
    out += '|';
    for (std::size_t c = 0; c < width; ++c) {
      const double fraction = std::clamp(coverage[r][c] / cell_capacity, 0.0, 1.0);
      const auto idx = static_cast<std::size_t>(fraction * 5.0 + 0.5);
      out += kRamp[idx];
    }
    out += "|\n";
  }
  out += "(rows: node bands 0.." + std::to_string(machine_nodes) +
         "; columns: time 0.." + to_string(horizon) + ")\n";
  return out;
}

}  // namespace xres
