#!/usr/bin/env python3
"""CI perf gate: diff a BENCH_engine.json run against the committed baseline.

Usage:
    tools/perf_gate.py BENCH_engine.json [--baseline bench/BENCH_engine.baseline.json]
                       [--threshold 0.15]
    tools/perf_gate.py --ledger results/ledger.jsonl [--study NAME]
                       [--threshold 0.15]

Benchmark mode compares cpu_s_per_iter per benchmark and fails (exit 1) when
any benchmark regresses by more than the threshold (default 15%, chosen to
sit above shared-runner noise — see docs/PERFORMANCE.md for the gate policy
and the baseline update procedure). Benchmarks present in the baseline but
missing from the run also fail; new benchmarks are reported but pass (commit
a refreshed baseline to start tracking them).

Benchmark mode also gates batch scaling: for the thread-parameterised batch
benchmarks (BM_TrialExecutorBatch/<N>/real_time and
BM_TrialBatchFailureHeavy/<N>/real_time) the wall-clock throughput at every
thread count must stay monotone-ish — at least --scaling-floor (default 0.75)
of the single-thread throughput. This catches the "more threads, fewer
trials/s" contention regressions that per-benchmark deltas cannot see.

Ledger mode reads the CRC-framed run ledger `xres` appends to (see
docs/OBSERVABILITY.md), groups records by (study, params digest, seed,
threads, platform digest), and fails when the newest run's trials/s
regressed beyond the
threshold against the best run of the same group. Corrupt or torn lines are
skipped, matching `xres log`.

Stdlib only; no third-party dependencies.
"""

from __future__ import annotations

import argparse
import json
import sys
import zlib


def load_rows(path: str) -> dict[str, float]:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != "xres-bench-v1":
        raise SystemExit(f"{path}: unexpected schema {doc.get('schema')!r}")
    rows: dict[str, float] = {}
    for row in doc.get("benchmarks", []):
        if row.get("error"):
            raise SystemExit(f"{path}: benchmark {row.get('name')!r} recorded an error")
        name = row["name"]
        cpu = row.get("cpu_s_per_iter", 0.0)
        if cpu <= 0.0:
            raise SystemExit(f"{path}: benchmark {name!r} has no positive cpu_s_per_iter")
        # With --benchmark_repetitions the summary holds one row per
        # repetition under the same name; keep the fastest. Wall-clock noise
        # is one-sided (co-runners only slow you down), so min-of-N is the
        # stable estimator on a shared machine.
        rows[name] = min(cpu, rows.get(name, cpu))
    if not rows:
        raise SystemExit(f"{path}: no benchmarks recorded")
    return rows


def load_real_rows(path: str) -> dict[str, float]:
    """Like load_rows but min real_s_per_iter — the scaling gate's estimator."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    rows: dict[str, float] = {}
    for row in doc.get("benchmarks", []):
        name = row["name"]
        real = row.get("real_s_per_iter", 0.0)
        if real <= 0.0:
            continue
        rows[name] = min(real, rows.get(name, real))
    return rows


# Thread-parameterised batch benchmarks whose wall-clock throughput must not
# collapse as the thread count grows. Each runs a fixed batch per iteration,
# so relative throughput is just the inverse of real_s_per_iter.
SCALING_FAMILIES = ("BM_TrialExecutorBatch", "BM_TrialBatchFailureHeavy")


def batch_scaling_gate(real_rows: dict[str, float], floor: float) -> list[str]:
    """Return failure strings for families whose tp(N) < floor * tp(1)."""
    failures: list[str] = []
    for family in SCALING_FAMILIES:
        prefix = family + "/"
        points: dict[int, float] = {}
        for name, real in real_rows.items():
            if not name.startswith(prefix):
                continue
            arg = name[len(prefix):].split("/")[0]
            if arg.isdigit():
                points[int(arg)] = 1.0 / real
        if 1 not in points or len(points) < 2:
            # Old summaries predate the batch benchmarks; nothing to gate.
            continue
        base = points[1]
        print(f"\n{family} scaling (relative wall-clock throughput, floor {floor:.2f}):")
        for threads in sorted(points):
            ratio = points[threads] / base
            marker = ""
            if threads > 1 and ratio < floor:
                marker = "  REGRESSION"
                failures.append(
                    f"{family}: throughput at {threads} threads is "
                    f"{ratio:.2f}x the 1-thread run (< {floor:.2f}x floor)"
                )
            print(f"  threads {threads:>2}: {ratio:>5.2f}x{marker}")
    return failures


def load_ledger(path: str) -> list[dict]:
    """Parse CRC-framed run-ledger lines; skip torn/corrupt ones silently."""
    records: list[dict] = []
    with open(path, encoding="utf-8", errors="replace") as fh:
        for line in fh:
            line = line.rstrip("\n")
            # Frame: {"c":"<crc32 hex>","r":<record>}
            if not line.startswith('{"c":"') or len(line) < 22 or not line.endswith("}"):
                continue
            crc_hex, body = line[6:14], line[20:-1]
            if line[14:20] != '","r":':
                continue
            if f"{zlib.crc32(body.encode()) & 0xFFFFFFFF:08x}" != crc_hex:
                continue
            try:
                record = json.loads(body)
            except json.JSONDecodeError:
                continue
            if record.get("ledger") == "xres-run-v1":
                records.append(record)
    return records


def ledger_gate(path: str, study: str | None, threshold: float) -> int:
    records = [
        r
        for r in load_ledger(path)
        if r.get("status") == 0 and r.get("trials_per_s", 0) > 0
    ]
    if study:
        records = [r for r in records if r.get("study") == study]
    if not records:
        raise SystemExit(f"{path}: no completed runs with throughput recorded")

    groups: dict[tuple, list[dict]] = {}
    for record in records:  # file order == append order; last entry is newest
        key = (
            record.get("study"),
            record.get("params_digest"),
            record.get("seed"),
            record.get("threads"),
            # Different platform models run at different speeds by design;
            # never compare their throughput against each other.
            record.get("platform_crc", ""),
        )
        groups.setdefault(key, []).append(record)

    failures: list[str] = []
    print(f"{'study':<28} {'params':>8} {'thr':>3} {'runs':>4} "
          f"{'best t/s':>10} {'latest t/s':>10}  {'delta':>8}")
    for key in sorted(groups, key=lambda k: (str(k[0]), str(k[1]))):
        rows = groups[key]
        best = max(r["trials_per_s"] for r in rows)
        latest = rows[-1]["trials_per_s"]
        delta = latest / best - 1.0
        marker = ""
        if -delta > threshold:
            marker = "  REGRESSION"
            failures.append(
                f"{key[0]} (params {key[1]}, threads {key[3]}): "
                f"{latest:.1f} trials/s vs best {best:.1f} "
                f"({delta:.1%} < -{threshold:.0%})"
            )
        print(f"{str(key[0]):<28} {str(key[1]):>8} {str(key[3]):>3} {len(rows):>4} "
              f"{best:>10.1f} {latest:>10.1f}  {delta:>+7.1%}{marker}")

    if failures:
        print(f"\nledger gate FAILED ({len(failures)} regression(s)):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nledger gate passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "run",
        nargs="?",
        help="BENCH_engine.json produced by bench/perf_engine",
    )
    parser.add_argument(
        "--baseline",
        default="bench/BENCH_engine.baseline.json",
        help="committed baseline summary (default: %(default)s)",
    )
    parser.add_argument(
        "--ledger",
        help="read throughput from this xres run ledger instead of a benchmark summary",
    )
    parser.add_argument(
        "--study",
        help="ledger mode: only gate runs of this study",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="max tolerated slowdown fraction, e.g. 0.15 = 15%% (default: %(default)s)",
    )
    parser.add_argument(
        "--scaling-floor",
        type=float,
        default=0.75,
        help="benchmark mode: minimum multi-thread/1-thread throughput ratio "
        "for the batch benchmarks (default: %(default)s)",
    )
    args = parser.parse_args()

    if args.ledger:
        if args.run:
            parser.error("pass either a benchmark summary or --ledger, not both")
        return ledger_gate(args.ledger, args.study, args.threshold)
    if not args.run:
        parser.error("need a benchmark summary (or --ledger)")

    baseline = load_rows(args.baseline)
    run = load_rows(args.run)

    failures: list[str] = []
    width = max(len(name) for name in baseline.keys() | run.keys())
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'run':>12}  {'delta':>8}")
    for name in sorted(baseline):
        base_cpu = baseline[name]
        if name not in run:
            print(f"{name:<{width}}  {base_cpu:>12.3e}  {'MISSING':>12}  {'':>8}")
            failures.append(f"{name}: present in baseline but missing from run")
            continue
        cpu = run[name]
        delta = cpu / base_cpu - 1.0
        marker = ""
        if delta > args.threshold:
            marker = "  REGRESSION"
            failures.append(
                f"{name}: {cpu:.3e}s vs baseline {base_cpu:.3e}s "
                f"(+{delta:.1%} > {args.threshold:.0%})"
            )
        print(f"{name:<{width}}  {base_cpu:>12.3e}  {cpu:>12.3e}  {delta:>+7.1%}{marker}")
    for name in sorted(run.keys() - baseline.keys()):
        print(f"{name:<{width}}  {'(new)':>12}  {run[name]:>12.3e}  {'':>8}")

    failures += batch_scaling_gate(load_real_rows(args.run), args.scaling_floor)

    if failures:
        print(f"\nperf gate FAILED ({len(failures)} problem(s)):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
