#pragma once

/// \file app_runtime.hpp
/// ResilientAppRuntime: the per-application state machine that executes an
/// ExecutionPlan inside a Simulation under injected failures.
///
/// Phases:
///
///   Working ──quantum──▶ Checkpointing ──▶ Working ... ──▶ Done
///      │                      │
///      └────── failure ───────┘
///              │
///              ├─ masked (redundant replica absorbed it) → phase continues
///              ├─ rollback techniques → Restarting → Working (recompute)
///              └─ parallel recovery → Recovering → resume (no rollback)
///
/// The runtime is driven entirely by its owning Simulation: it schedules
/// one pending phase-completion event at a time; `on_failure` cancels it
/// and transitions. Progress is measured in stretched-work seconds against
/// plan.work_target; a per-level ledger records the progress captured by
/// the last completed checkpoint of each level.

#include <cstdint>
#include <functional>
#include <vector>

#include <optional>

#include "failure/process.hpp"
#include "resilience/plan.hpp"
#include "runtime/result.hpp"
#include "runtime/timeline.hpp"
#include "runtime/transfer_service.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace xres {

namespace obs {
class TrialObs;
}

/// Direct-execution hand-off between a ResilientAppRuntime and the direct
/// trial engine (core/trial_engine.cpp). Instead of scheduling its phase
/// and timeout events into the Simulation's queue, a direct-attached
/// runtime publishes them into these slots; the engine's dispatch loop
/// merges them with its own failure stream by (time, seq) — the exact total
/// order the event queue would have produced. `next_seq` is the shared
/// virtual insertion counter: every schedule action (failure gap, timeout,
/// phase) consumes one in the same call order as the event path, so ties in
/// time break identically.
struct DirectHost {
  TimePoint phase_time{};
  std::uint64_t phase_seq{0};
  bool phase_pending{false};
  TimePoint timeout_time{};
  std::uint64_t timeout_seq{0};
  bool timeout_pending{false};
  std::uint64_t next_seq{0};
};

class ResilientAppRuntime {
 public:
  enum class Phase { kIdle, kWorking, kCheckpointing, kRestarting, kRecovering, kDone, kAborted };

  /// Invoked exactly once, on completion or wall-time-cap abort (not on an
  /// external abort()).
  using CompletionCallback = std::function<void(const ExecutionResult&)>;

  /// \p seed drives the runtime's internal randomness (redundancy victim
  /// classification, parallel-recovery idle-node thinning).
  ResilientAppRuntime(Simulation& sim, ExecutionPlan plan, std::uint64_t seed,
                      CompletionCallback on_complete);

  ResilientAppRuntime(const ResilientAppRuntime&) = delete;
  ResilientAppRuntime& operator=(const ResilientAppRuntime&) = delete;
  ~ResilientAppRuntime();

  /// Begin executing at the current simulation time.
  void start();

  /// Deliver a failure to this application (from either failure process).
  void on_failure(const Failure& failure);

  /// Externally stop the execution (deadline drop). No callback is fired;
  /// the caller already knows. Safe to call in any phase.
  void abort();

  [[nodiscard]] Phase phase() const { return phase_; }
  [[nodiscard]] bool finished() const {
    return phase_ == Phase::kDone || phase_ == Phase::kAborted;
  }
  [[nodiscard]] const ExecutionPlan& plan() const { return plan_; }

  /// Stretched work completed so far.
  [[nodiscard]] Duration progress() const { return progress_; }

  /// The checkpoint interval currently in force (equals the plan's
  /// quantum unless adaptive_interval has retuned it).
  [[nodiscard]] Duration current_quantum() const { return quantum_; }

  /// Fraction of the stretched work target completed, in [0, 1].
  [[nodiscard]] double progress_fraction() const {
    return progress_ / plan_.work_target;
  }

  /// Statistics accumulated so far (final values after completion).
  [[nodiscard]] const ExecutionResult& result() const { return result_; }

  [[nodiscard]] const char* phase_name() const;

  /// Record every phase span for later inspection/rendering. Must be
  /// called before start(); costs one vector append per phase transition.
  void enable_timeline();

  /// Route PFS-backed checkpoint/restart phases through \p service (e.g. a
  /// contended SharedChannelTransferService shared across applications).
  /// Must be called before start(); the service must outlive the runtime.
  /// Without it, nominal Eq.-3 durations are taken literally.
  void set_pfs_transfer_service(TransferService* service);

  /// The recorded timeline, or nullptr when recording was not enabled.
  [[nodiscard]] const Timeline* timeline() const {
    return timeline_.has_value() ? &*timeline_ : nullptr;
  }

  /// Attach a per-trial observation context (metrics and/or sim-time trace;
  /// see obs/trial_obs.hpp). Must be called before start(); \p obs (may be
  /// null) must outlive the runtime. When null or disabled, every
  /// instrumentation site reduces to a pointer test.
  void set_observer(obs::TrialObs* obs);

  /// Direct execution: publish phase/timeout events into \p host instead of
  /// the Simulation queue (see DirectHost). Must be called before start();
  /// incompatible with a PFS transfer service. \p host must outlive the
  /// runtime.
  void attach_direct_host(DirectHost* host);

  /// Fire the pending phase-completion published in the direct host: clears
  /// the pending flag and invokes the phase's completion handler, exactly
  /// as the queued event's callback would. Only valid direct-attached with
  /// a pending phase, at sim.now() == host->phase_time.
  void dispatch_phase_direct();

  /// Fire the pending wall-time-cap timeout published in the direct host.
  void dispatch_timeout_direct();

 private:
  void enter_working();
  void enter_checkpointing();
  void enter_restarting(std::size_t level_index, Duration restore_cost, bool shared_pfs);
  void enter_recovering(Duration lost_work);

  /// Schedule the current phase's completion: a plain timer, or a shared
  /// PFS transfer when the phase moves data through the file system and a
  /// service is attached. \p done is parked in phase_done_ so the scheduled
  /// closure captures only `this` (stays inline in SmallCallback's buffer).
  void schedule_phase(Duration nominal, bool shared_pfs, EventCallback done);

  /// Direct-mode counterpart of schedule_phase: publishes the completion
  /// time into the host (no callback — dispatch_phase_direct() re-derives
  /// the handler from phase_ and phase_arg_, so the hot loop never builds a
  /// closure).
  void schedule_phase_direct(Duration nominal);

  /// Cancel the pending timeout if any (queue or direct).
  void cancel_timeout();
  void complete();
  void abort_on_timeout();

  void on_segment_done(Duration length);
  void on_checkpoint_done(std::size_t level_index, Duration cost);
  void on_restart_done(Duration cost);
  void on_recovery_done(Duration duration);

  /// Book elapsed phase time into the result buckets + energy integral.
  void accrue(Duration elapsed);

  /// accrue() body for callers that know the current phase statically
  /// (the per-event completion handlers): identical operations in the
  /// identical order, minus the phase dispatch. \p bucket is the
  /// result_ time bucket for the phase and \p nodes its active-node
  /// count.
  void accrue_known(Duration elapsed, Duration& bucket, SpanKind span,
                    double nodes);

  /// The cold tail of accrue_known: trace-span emission (only reached
  /// when the trial collects a trace).
  void accrue_trace_span(SpanKind span, Duration elapsed);

  /// Active node count in the current phase (energy model).
  [[nodiscard]] double active_nodes() const;

  /// Handle a non-masked failure for rollback techniques (CR/ML/Red).
  void handle_rollback_failure(SeverityLevel severity);

  /// Handle a failure under parallel recovery.
  void handle_parallel_recovery_failure();

  /// Redundancy replica classification: returns true when the failure was
  /// absorbed by a healthy replica (execution continues undisturbed).
  bool redundancy_masks_failure();

  /// Adaptive-interval extension: re-derive the Eq.-4 interval from the
  /// observed failure count (Gamma-prior estimate anchored on the planned
  /// rate). Called after each completed checkpoint.
  void retune_quantum();

  void cancel_pending();

  Simulation& sim_;
  ExecutionPlan plan_;
  Pcg32 rng_;
  CompletionCallback on_complete_;

  Phase phase_{Phase::kIdle};
  TimePoint start_time_{};
  TimePoint phase_start_{};
  Duration progress_{Duration::zero()};
  Duration quantum_{Duration::infinity()};
  Duration next_checkpoint_at_{Duration::infinity()};
  std::uint64_t checkpoint_counter_{0};

  /// Progress captured by the newest completed checkpoint of each level
  /// (index aligned with plan_.levels). Starts at zero: recovering with no
  /// checkpoint restarts the application from the beginning.
  std::vector<Duration> saved_;

  /// Parallel recovery: stretched work being replayed.
  Duration recovery_lost_{Duration::zero()};

  /// Progress value captured by the in-flight checkpoint (semi-blocking
  /// checkpoints advance progress_ past it during the phase).
  Duration checkpoint_snapshot_{Duration::zero()};

  /// Redundancy replica health (counts of virtual processes).
  std::uint32_t dup_healthy_{0};
  std::uint32_t dup_degraded_{0};
  std::uint32_t singles_{0};

  /// Checkpoint-level odometer pattern, precomputed at start(): entry
  /// (k-1) % size is level_index_for_checkpoint(k). Empty when the cycle
  /// (the product of the nesting counts) is too long to tabulate.
  /// level_cycle_pos_ tracks checkpoint_counter_ % size incrementally so
  /// the per-checkpoint lookup never divides.
  std::vector<std::uint32_t> level_cycle_;
  std::uint64_t level_cycle_pos_{0};

  /// active_nodes() for the non-recovering / recovering phases,
  /// precomputed at start() — accrue() runs once per simulated phase.
  double active_normal_nodes_{0.0};
  double active_recovery_nodes_{0.0};

  std::optional<Timeline> timeline_;
  TransferService* pfs_service_{nullptr};
  obs::TrialObs* obs_{nullptr};
  DirectHost* direct_{nullptr};

  /// kWorking's on_segment_done target in direct mode (the only handler
  /// argument dispatch_phase_direct cannot re-derive from other state).
  Duration phase_arg_{Duration::zero()};

  /// Checkpoint level driving the current Checkpointing/Restarting phase
  /// and whether it moves data through the shared PFS (trace span args).
  std::size_t phase_level_{0};
  bool phase_pfs_{false};

  EventId pending_{};
  TransferService::TransferHandle pending_transfer_{};
  bool pending_is_transfer_{false};
  bool has_pending_{false};
  /// Completion handler of the in-flight phase (see schedule_phase).
  EventCallback phase_done_;
  EventId timeout_event_{};
  bool has_timeout_{false};

  ExecutionResult result_{};
};

}  // namespace xres
