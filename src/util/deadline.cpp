#include "util/deadline.hpp"

#include <algorithm>
#include <chrono>

namespace xres {

namespace {

/// Armed deadline as steady-clock nanoseconds since its epoch; 0 = none.
thread_local long long t_deadline_ns = 0;

long long now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ScopedDeadline::ScopedDeadline(double seconds) : previous_{t_deadline_ns} {
  if (seconds <= 0.0) return;
  const long long candidate = now_ns() + static_cast<long long>(seconds * 1e9);
  t_deadline_ns =
      previous_ == 0 ? candidate : std::min(previous_, candidate);
}

ScopedDeadline::~ScopedDeadline() { t_deadline_ns = previous_; }

bool deadline_armed() { return t_deadline_ns != 0; }

void deadline_poll() {
  if (t_deadline_ns == 0) return;
  if (now_ns() >= t_deadline_ns) {
    throw TrialTimeoutError{"trial exceeded its watchdog deadline"};
  }
}

}  // namespace xres
