#pragma once

/// \file units.hpp
/// Strongly typed physical quantities used throughout the simulator.
///
/// The paper's model mixes seconds (network latency), minutes (time steps),
/// hours (arrival processes), days (baseline execution times) and years
/// (component MTBF), plus gigabytes and GB/s. Mixing those as raw doubles is
/// the classic source of silent unit bugs, so each quantity is a distinct
/// type with explicit named constructors and accessors. All quantities are
/// stored in SI base units (seconds, bytes, bytes/second, events/second).

#include <compare>
#include <limits>
#include <string>

#include "util/check.hpp"

namespace xres {

/// A span of simulated time. May be zero or positive; negative durations are
/// representable (subtraction results) but most model boundaries check for
/// non-negativity explicitly.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration seconds(double s) { return Duration{s}; }
  [[nodiscard]] static constexpr Duration milliseconds(double ms) { return Duration{ms * 1e-3}; }
  [[nodiscard]] static constexpr Duration microseconds(double us) { return Duration{us * 1e-6}; }
  [[nodiscard]] static constexpr Duration minutes(double m) { return Duration{m * 60.0}; }
  [[nodiscard]] static constexpr Duration hours(double h) { return Duration{h * 3600.0}; }
  [[nodiscard]] static constexpr Duration days(double d) { return Duration{d * 86400.0}; }
  /// Julian year (365.25 days), the convention used for MTBF figures.
  [[nodiscard]] static constexpr Duration years(double y) { return Duration{y * 365.25 * 86400.0}; }
  [[nodiscard]] static constexpr Duration zero() { return Duration{0.0}; }
  [[nodiscard]] static constexpr Duration infinity() {
    return Duration{std::numeric_limits<double>::infinity()};
  }

  [[nodiscard]] constexpr double to_seconds() const { return seconds_; }
  [[nodiscard]] constexpr double to_minutes() const { return seconds_ / 60.0; }
  [[nodiscard]] constexpr double to_hours() const { return seconds_ / 3600.0; }
  [[nodiscard]] constexpr double to_days() const { return seconds_ / 86400.0; }
  [[nodiscard]] constexpr double to_years() const { return seconds_ / (365.25 * 86400.0); }

  [[nodiscard]] constexpr bool is_finite() const {
    return seconds_ < std::numeric_limits<double>::infinity() &&
           seconds_ > -std::numeric_limits<double>::infinity();
  }

  constexpr Duration& operator+=(Duration d) { seconds_ += d.seconds_; return *this; }
  constexpr Duration& operator-=(Duration d) { seconds_ -= d.seconds_; return *this; }
  constexpr Duration& operator*=(double k) { seconds_ *= k; return *this; }
  constexpr Duration& operator/=(double k) { seconds_ /= k; return *this; }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.seconds_ + b.seconds_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.seconds_ - b.seconds_}; }
  friend constexpr Duration operator*(Duration a, double k) { return Duration{a.seconds_ * k}; }
  friend constexpr Duration operator*(double k, Duration a) { return Duration{a.seconds_ * k}; }
  friend constexpr Duration operator/(Duration a, double k) { return Duration{a.seconds_ / k}; }
  /// Ratio of two durations (dimensionless).
  friend constexpr double operator/(Duration a, Duration b) { return a.seconds_ / b.seconds_; }
  friend constexpr Duration operator-(Duration a) { return Duration{-a.seconds_}; }

  friend constexpr auto operator<=>(Duration a, Duration b) = default;

 private:
  constexpr explicit Duration(double s) : seconds_{s} {}
  double seconds_{0.0};
};

/// An absolute instant on the simulation clock. Simulations start at
/// TimePoint::origin() (t = 0).
class TimePoint {
 public:
  constexpr TimePoint() = default;

  [[nodiscard]] static constexpr TimePoint origin() { return TimePoint{0.0}; }
  [[nodiscard]] static constexpr TimePoint at(Duration since_origin) {
    return TimePoint{since_origin.to_seconds()};
  }
  [[nodiscard]] static constexpr TimePoint infinity() {
    return TimePoint{std::numeric_limits<double>::infinity()};
  }

  /// Elapsed time since the simulation origin.
  [[nodiscard]] constexpr Duration since_origin() const { return Duration::seconds(seconds_); }
  [[nodiscard]] constexpr double to_seconds() const { return seconds_; }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint{t.seconds_ + d.to_seconds()};
  }
  friend constexpr TimePoint operator+(Duration d, TimePoint t) { return t + d; }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) {
    return TimePoint{t.seconds_ - d.to_seconds()};
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::seconds(a.seconds_ - b.seconds_);
  }
  constexpr TimePoint& operator+=(Duration d) { seconds_ += d.to_seconds(); return *this; }

  friend constexpr auto operator<=>(TimePoint a, TimePoint b) = default;

 private:
  constexpr explicit TimePoint(double s) : seconds_{s} {}
  double seconds_{0.0};
};

/// An amount of data (checkpoint images, message logs). Stored in bytes.
class DataSize {
 public:
  constexpr DataSize() = default;

  [[nodiscard]] static constexpr DataSize bytes(double b) { return DataSize{b}; }
  [[nodiscard]] static constexpr DataSize megabytes(double mb) { return DataSize{mb * 1e6}; }
  [[nodiscard]] static constexpr DataSize gigabytes(double gb) { return DataSize{gb * 1e9}; }
  [[nodiscard]] static constexpr DataSize terabytes(double tb) { return DataSize{tb * 1e12}; }
  [[nodiscard]] static constexpr DataSize zero() { return DataSize{0.0}; }

  [[nodiscard]] constexpr double to_bytes() const { return bytes_; }
  [[nodiscard]] constexpr double to_gigabytes() const { return bytes_ / 1e9; }
  [[nodiscard]] constexpr double to_terabytes() const { return bytes_ / 1e12; }

  friend constexpr DataSize operator+(DataSize a, DataSize b) { return DataSize{a.bytes_ + b.bytes_}; }
  friend constexpr DataSize operator-(DataSize a, DataSize b) { return DataSize{a.bytes_ - b.bytes_}; }
  friend constexpr DataSize operator*(DataSize a, double k) { return DataSize{a.bytes_ * k}; }
  friend constexpr DataSize operator*(double k, DataSize a) { return DataSize{a.bytes_ * k}; }
  friend constexpr DataSize operator/(DataSize a, double k) { return DataSize{a.bytes_ / k}; }
  friend constexpr double operator/(DataSize a, DataSize b) { return a.bytes_ / b.bytes_; }
  constexpr DataSize& operator+=(DataSize d) { bytes_ += d.bytes_; return *this; }

  friend constexpr auto operator<=>(DataSize a, DataSize b) = default;

 private:
  constexpr explicit DataSize(double b) : bytes_{b} {}
  double bytes_{0.0};
};

/// Data transfer rate. Stored in bytes/second.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;

  [[nodiscard]] static constexpr Bandwidth bytes_per_second(double bps) { return Bandwidth{bps}; }
  [[nodiscard]] static constexpr Bandwidth gigabytes_per_second(double gbps) {
    return Bandwidth{gbps * 1e9};
  }

  [[nodiscard]] constexpr double to_bytes_per_second() const { return bps_; }
  [[nodiscard]] constexpr double to_gigabytes_per_second() const { return bps_ / 1e9; }

  friend constexpr Bandwidth operator*(Bandwidth b, double k) { return Bandwidth{b.bps_ * k}; }
  friend constexpr Bandwidth operator/(Bandwidth b, double k) { return Bandwidth{b.bps_ / k}; }
  friend constexpr auto operator<=>(Bandwidth a, Bandwidth b) = default;

 private:
  constexpr explicit Bandwidth(double bps) : bps_{bps} {}
  double bps_{0.0};
};

/// Time to move \p size at \p bw. Checks bw > 0.
[[nodiscard]] Duration transfer_time(DataSize size, Bandwidth bw);

/// An event rate (failures per unit time). Stored in events/second.
class Rate {
 public:
  constexpr Rate() = default;

  [[nodiscard]] static constexpr Rate per_second(double r) { return Rate{r}; }
  [[nodiscard]] static constexpr Rate per_hour(double r) { return Rate{r / 3600.0}; }
  [[nodiscard]] static constexpr Rate per_year(double r) { return Rate{r / (365.25 * 86400.0)}; }
  [[nodiscard]] static constexpr Rate zero() { return Rate{0.0}; }

  /// Rate corresponding to one event per \p mean interval.
  [[nodiscard]] static Rate one_per(Duration mean);

  [[nodiscard]] constexpr double per_second_value() const { return per_second_; }
  [[nodiscard]] constexpr double per_hour_value() const { return per_second_ * 3600.0; }

  /// Mean interval between events (infinite for a zero rate).
  [[nodiscard]] Duration mean_interval() const;

  /// Expected event count over \p window (rate × time, dimensionless).
  [[nodiscard]] constexpr double expected_events(Duration window) const {
    return per_second_ * window.to_seconds();
  }

  friend constexpr Rate operator*(Rate r, double k) { return Rate{r.per_second_ * k}; }
  friend constexpr Rate operator*(double k, Rate r) { return Rate{r.per_second_ * k}; }
  friend constexpr Rate operator/(Rate r, double k) { return Rate{r.per_second_ / k}; }
  friend constexpr Rate operator+(Rate a, Rate b) { return Rate{a.per_second_ + b.per_second_}; }
  friend constexpr double operator/(Rate a, Rate b) { return a.per_second_ / b.per_second_; }
  friend constexpr auto operator<=>(Rate a, Rate b) = default;

 private:
  constexpr explicit Rate(double r) : per_second_{r} {}
  double per_second_{0.0};
};

/// Human-readable rendering, e.g. "2d 03:14:05" or "1.50 ms".
[[nodiscard]] std::string to_string(Duration d);
[[nodiscard]] std::string to_string(TimePoint t);
[[nodiscard]] std::string to_string(DataSize s);

}  // namespace xres
