# Empty compiler generated dependencies file for xres_apps.
# This may be replaced when dependencies are built.
