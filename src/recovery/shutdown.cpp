#include "recovery/shutdown.hpp"

#include <atomic>
#include <csignal>
#include <cstdlib>

namespace xres::recovery {

namespace {

// The flag must be safe against BOTH reentrancy (the handler may interrupt
// any thread at any point) and cross-thread visibility (worker threads poll
// it between trials). A lock-free atomic satisfies both — atomics are
// async-signal-safe exactly when lock-free, where volatile sig_atomic_t
// alone would be a data race against the pollers.
std::atomic<int> g_shutdown_signal{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "shutdown flag must be async-signal-safe");

extern "C" void on_shutdown_signal(int sig) {
  if (g_shutdown_signal.exchange(sig, std::memory_order_relaxed) != 0) {
    // Second signal: the user is done waiting for the drain. _Exit is
    // async-signal-safe; 128+sig matches shell convention for fatal
    // signals.
    std::_Exit(128 + sig);
  }
}

}  // namespace

void install_shutdown_handlers() {
  std::signal(SIGINT, on_shutdown_signal);
  std::signal(SIGTERM, on_shutdown_signal);
}

bool shutdown_requested() {
  return g_shutdown_signal.load(std::memory_order_relaxed) != 0;
}

int shutdown_signal() { return g_shutdown_signal.load(std::memory_order_relaxed); }

void request_shutdown_for_tests() {
  g_shutdown_signal.store(SIGINT, std::memory_order_relaxed);
}

void clear_shutdown_for_tests() {
  g_shutdown_signal.store(0, std::memory_order_relaxed);
}

}  // namespace xres::recovery
