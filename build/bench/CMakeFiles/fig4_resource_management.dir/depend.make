# Empty dependencies file for fig4_resource_management.
# This may be replaced when dependencies are built.
