file(REMOVE_RECURSE
  "CMakeFiles/xres_failure.dir/distribution.cpp.o"
  "CMakeFiles/xres_failure.dir/distribution.cpp.o.d"
  "CMakeFiles/xres_failure.dir/process.cpp.o"
  "CMakeFiles/xres_failure.dir/process.cpp.o.d"
  "CMakeFiles/xres_failure.dir/replay.cpp.o"
  "CMakeFiles/xres_failure.dir/replay.cpp.o.d"
  "CMakeFiles/xres_failure.dir/severity.cpp.o"
  "CMakeFiles/xres_failure.dir/severity.cpp.o.d"
  "CMakeFiles/xres_failure.dir/trace.cpp.o"
  "CMakeFiles/xres_failure.dir/trace.cpp.o.d"
  "libxres_failure.a"
  "libxres_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xres_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
