#pragma once

/// \file trial_engine.hpp
/// Trial execution engines.
///
/// Every single-application trial can run on one of two engines:
///
///  * **event** — the reference path: failure process, phase completions
///    and the wall-time cap are all events in the Simulation's queue
///    (sim/event_queue.hpp), popped in (time, insertion-seq) order.
///  * **direct** — the batched fast path: the trial driver owns the three
///    pending events (next failure, phase completion, timeout) as plain
///    slots, merges them by the same (time, seq) order with a shared
///    virtual insertion counter (runtime/app_runtime.hpp `DirectHost`),
///    and dispatches handlers through a closure-free switch. No queue
///    traffic, no per-phase callback construction, no per-trial
///    SeverityModel or plan rebuild (thread-local caches) — while every
///    observable (results, metrics including `sim_events`, traces, RNG
///    draw order, watchdog-poll timing) is byte-identical to the event
///    path. The differential harness (tests/surrogate_diff_test.cpp) and
///    tier-1's determinism stage enforce that equivalence.
///
/// Selection: `XRES_TRIAL_ENGINE=event|direct|auto` (default `auto`, which
/// runs direct whenever the trial is eligible — all `run_trial` work kinds
/// are; multi-app simulations with shared PFS services always use the
/// event engine). Tests pin the engine programmatically with
/// `ScopedTrialEngine`.

#include <cstdint>

#include "core/executor.hpp"
#include "failure/severity.hpp"
#include "resilience/plan.hpp"
#include "runtime/result.hpp"

namespace xres {

enum class TrialEngine { kEvent, kDirect };

/// The engine selected by XRES_TRIAL_ENGINE (or a live ScopedTrialEngine
/// override). Unknown values fall back to the default (`auto` → direct).
[[nodiscard]] TrialEngine trial_engine();

/// Pin the trial engine for a scope (tests, the differential harness).
/// Overrides nest; destruction restores the previous selection. The
/// override is process-global: study drivers fan trials across worker
/// threads and the whole batch must run one engine.
class ScopedTrialEngine {
 public:
  explicit ScopedTrialEngine(TrialEngine engine);
  ~ScopedTrialEngine();

  ScopedTrialEngine(const ScopedTrialEngine&) = delete;
  ScopedTrialEngine& operator=(const ScopedTrialEngine&) = delete;

 private:
  int previous_;
};

/// Run one plan trial on the direct engine. \p plan must be feasible.
[[nodiscard]] ExecutionResult run_plan_trial_direct(const ExecutionPlan& plan,
                                                    const SeverityModel& severity,
                                                    const FailureDistribution& dist,
                                                    std::uint64_t seed,
                                                    obs::TrialObs* obs);

/// Run one trace-replay trial on the direct engine. \p plan must be
/// feasible.
[[nodiscard]] ExecutionResult run_trace_trial_direct(const ExecutionPlan& plan,
                                                     const FailureTrace& trace,
                                                     std::uint64_t seed,
                                                     obs::TrialObs* obs);

/// Fold one finished trial into its observer: counters/gauges from the
/// ExecutionResult plus the trial-shape histograms, including the exact
/// executed-event count (identical on both engines by construction).
/// Shared by both engines so the recorded metrics agree byte for byte.
void record_trial_metrics(obs::TrialObs* obs, const ExecutionResult& r,
                          std::uint64_t sim_events);

/// Thread-local severity-model cache: returns a SeverityModel for
/// \p weights, rebuilding only when the weights change between calls
/// (within a study every trial shares one weight vector, so this is one
/// vector compare per trial instead of a normalize + alias-table build).
[[nodiscard]] const SeverityModel& cached_severity_model(
    const std::vector<double>& weights);

/// Thread-local plan cache for planner-driven trials: returns the
/// make_plan result for \p config, rebuilding only when the configuration
/// changes between calls. Within a study cell every trial shares one
/// configuration, so the multilevel optimizer (the dominant per-trial
/// setup cost) runs once per worker per cell.
[[nodiscard]] const ExecutionPlan& cached_plan(const SingleAppTrialConfig& config);

}  // namespace xres
