file(REMOVE_RECURSE
  "libxres_resilience.a"
)
