
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_checkpoint_interval.cpp" "bench/CMakeFiles/ablation_checkpoint_interval.dir/ablation_checkpoint_interval.cpp.o" "gcc" "bench/CMakeFiles/ablation_checkpoint_interval.dir/ablation_checkpoint_interval.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/xres_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/xres_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/xres_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/resilience/CMakeFiles/xres_resilience.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/xres_failure.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xres_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rm/CMakeFiles/xres_rm.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/xres_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/xres_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/xres_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
