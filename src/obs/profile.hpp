#pragma once

/// \file profile.hpp
/// Executor profiling: wall-clock phase timing and progress/ETA reporting
/// for study drivers.
///
/// These measure *host* time (std::chrono::steady_clock), unlike everything
/// else in obs which runs on simulated time — so profiler output is
/// intentionally kept OUT of the deterministic `--metrics` artifact and
/// goes to stderr / BENCH_engine.json instead.

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace xres::obs {

class JsonWriter;

/// Accumulating named wall-clock phases (setup / run / reduce). begin()
/// closes the previous phase; repeated names accumulate into one entry.
/// Single-threaded: profile the driver's calling thread, not workers.
class PhaseProfiler {
 public:
  void begin(const std::string& name);
  void end();

  /// (name, seconds) in first-begin order; closes nothing (an open phase is
  /// reported up to now).
  [[nodiscard]] std::vector<std::pair<std::string, double>> phases() const;

  [[nodiscard]] double total_seconds() const;

  /// One line, e.g. "setup 0.01 s + run 3.21 s + reduce 0.02 s = 3.24 s".
  [[nodiscard]] std::string summary() const;

  /// Append {"<name>_s": seconds, ...} fields to an open JSON object.
  void append_json(JsonWriter& w) const;

 private:
  [[nodiscard]] double open_elapsed() const;

  struct Phase {
    std::string name;
    double seconds{0.0};
  };
  std::vector<Phase> phases_;
  std::size_t open_index_{static_cast<std::size_t>(-1)};
  std::chrono::steady_clock::time_point open_start_{};
};

/// Pure progress-line rendering (unit-testable): "cell 12/40 (30%) eta 8 s".
/// \p elapsed_seconds is time since the sweep started; ETA extrapolates the
/// observed rate. No ETA is shown before the first completed unit.
[[nodiscard]] std::string render_progress(const std::string& unit, std::size_t done,
                                          std::size_t total, double elapsed_seconds);

/// Stderr progress meter with ETA, shaped to be handed to the executor as a
/// progress callback (`meter.callback()`); redraws in place with '\r' and
/// finishes the line at done == total. Updates are rate-limited to ~10 Hz
/// (the final update always prints).
class ProgressMeter {
 public:
  /// \p out null selects stderr.
  explicit ProgressMeter(std::string unit, std::FILE* out = nullptr);

  void update(std::size_t done, std::size_t total);

  /// A callback forwarding to update(); the meter must outlive it.
  [[nodiscard]] std::function<void(std::size_t, std::size_t)> callback();

 private:
  std::string unit_;
  std::FILE* out_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_draw_;
  std::size_t last_width_{0};
  bool drew_{false};
};

}  // namespace xres::obs
