// Ablation: parallel recovery's sensitivity to the recovery-parallelism
// factor P (how many helper nodes replay the failed node's work). The
// paper takes its value from Meneses et al. [2]; this sweep shows the
// Figure 1/2 conclusions hold for any P >= 1 and quantifies the gain.

#include <cstdio>
#include <vector>

#include "apps/app_type.hpp"
#include "core/single_app_study.hpp"
#include "study/context.hpp"
#include "study/platform_params.hpp"
#include "study/registry.hpp"

namespace {
using namespace xres;

int run(study::StudyContext& ctx) {
  const auto trials = ctx.params().u32("trials");
  const std::uint64_t seed = ctx.seed();
  const TrialExecutor executor = ctx.make_executor();
  study::ObsCollector& collector = ctx.collector();
  study::RecoveryCoordinator& coordinator = ctx.recovery();

  std::printf("Ablation: parallel recovery efficiency vs. recovery parallelism P\n");
  std::printf("application D64 @ 100%% of the exascale system, MTBF 10 y, %u trials\n\n",
              trials);

  Table table{{"P", "efficiency", "time recovering (mean)", "energy (node-s, mean)"}};
  for (double p : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    SingleAppTrialConfig config;
    study::apply_platform_params(config.machine, ctx.params());
    config.app = AppSpec{app_type_by_name("D64"), 120000, 1440};
    config.technique = TechniqueKind::kParallelRecovery;
    config.resilience.recovery_parallelism = p;

    std::vector<TrialSpec> specs;
    specs.reserve(trials);
    for (std::uint32_t t = 0; t < trials; ++t) {
      specs.push_back(TrialSpec{config, {t}});
    }
    RunningStats eff;
    RunningStats recovering;
    RunningStats energy;
    for (const ExecutionResult& r : collector.run_batch(
             executor, seed, specs, "P=" + fmt_double(p, 0), coordinator)) {
      eff.add(r.efficiency);
      recovering.add(r.time_recovering.to_minutes());
      energy.add(r.node_seconds);
    }
    table.add_row({fmt_double(p, 0), fmt_mean_std(eff.mean(), eff.stddev()),
                   fmt_double(recovering.mean(), 1) + " min",
                   fmt_double(energy.mean(), 0)});
  }
  std::printf("%s", table.to_text().c_str());
  if (coordinator.interrupted()) return coordinator.finish();
  collector.finish();
  return coordinator.finish();
}

study::StudyDefinition make() {
  study::StudyDefinition def;
  def.name = "ablation_recovery_parallelism";
  def.group = study::StudyGroup::kAblation;
  def.description =
      "parallel recovery's sensitivity to the recovery-parallelism factor P";
  def.summary = "ablation_recovery_parallelism — parallel recovery vs. P";
  def.options.default_seed = 8;
  def.params.integer("trials", "trials per P", 60).min(1);
  def.run = run;
  return def;
}

const study::Registration registered{make()};

}  // namespace
