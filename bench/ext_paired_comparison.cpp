// Extension bench: paired technique comparison under common random
// numbers. Every technique replays the SAME failure traces, so per-trace
// deltas (and win rates) isolate the technique effect from failure-
// sampling noise; a Welch test on the deltas quantifies significance with
// far fewer trials than independent sampling needs.

#include <cstdio>
#include <vector>

#include "apps/app_type.hpp"
#include "common.hpp"
#include "core/single_app_study.hpp"
#include "failure/severity.hpp"
#include "resilience/planner.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace xres;
  CliParser cli{"ext_paired_comparison — common-random-number technique duel"};
  cli.add_option("--traces", "failure traces (pairs) to replay", "30");
  cli.add_option("--type", "application type (Table I)", "D64");
  cli.add_option("--system-share", "fraction of machine used", "0.25");
  cli.add_option("--seed", "root RNG seed", "13");
  add_threads_option(cli);
  bench::add_obs_options(cli);
  bench::add_recovery_options(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  const auto traces = static_cast<std::uint32_t>(cli.integer("--traces"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("--seed"));
  const TrialExecutor executor{parse_threads_option(cli)};
  bench::ObsCollector collector{bench::read_obs_options(cli)};
  bench::RecoveryCoordinator coordinator{bench::read_recovery_options(cli),
                                         "ext_paired_comparison", seed};

  const MachineSpec machine = MachineSpec::exascale();
  const auto nodes = static_cast<std::uint32_t>(cli.real("--system-share") *
                                                machine.node_count);
  const AppSpec app{app_type_by_name(cli.str("--type")), nodes, 1440};
  const ResilienceConfig resilience;
  const SeverityModel severity{resilience.severity_weights};

  const std::vector<TechniqueKind> kinds{TechniqueKind::kCheckpointRestart,
                                         TechniqueKind::kMultilevel,
                                         TechniqueKind::kParallelRecovery};
  std::vector<ExecutionPlan> plans;
  for (TechniqueKind kind : kinds) plans.push_back(make_plan(kind, app, machine, resilience));

  std::printf("Extension: paired comparison on %u shared failure traces\n", traces);
  std::printf("application %s, MTBF %s\n\n", app.describe().c_str(),
              to_string(resilience.node_mtbf).c_str());

  // Trace generation stays serial (it is cheap and sequentially seeded);
  // the replays fan out as one batch over all (trace, technique) pairs.
  std::vector<TrialSpec> specs;
  specs.reserve(static_cast<std::size_t>(traces) * kinds.size());
  for (std::uint32_t i = 0; i < traces; ++i) {
    Pcg32 rng{derive_seed(seed, i)};
    // The trace's rate must cover the highest-rate plan; all three use
    // N_a nodes so the rates coincide.
    const FailureTrace trace =
        FailureTrace::generate(plans[0].failure_rate, Duration::days(60.0), severity,
                               FailureDistribution::exponential(), rng);
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      specs.push_back(TrialSpec{TraceTrialSpec{plans[k], resilience, trace}, {i, k}});
    }
  }
  const std::vector<ExecutionResult> results =
      collector.run_batch(executor, seed, specs, "shared-trace replays", coordinator);

  // Efficiency per technique per trace.
  std::vector<std::vector<double>> eff(kinds.size());
  for (std::uint32_t i = 0; i < traces; ++i) {
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      eff[k].push_back(results[static_cast<std::size_t>(i) * kinds.size() + k].efficiency);
    }
  }

  Table table{{"matchup", "mean delta", "win rate", "Welch t", "significant @95%"}};
  for (std::size_t a = 0; a < kinds.size(); ++a) {
    for (std::size_t b = a + 1; b < kinds.size(); ++b) {
      RunningStats delta;
      int wins = 0;
      RunningStats sa;
      RunningStats sb;
      for (std::uint32_t i = 0; i < traces; ++i) {
        delta.add(eff[a][i] - eff[b][i]);
        if (eff[a][i] > eff[b][i]) ++wins;
        sa.add(eff[a][i]);
        sb.add(eff[b][i]);
      }
      const WelchResult welch = welch_t_test(sa.summary(), sb.summary());
      table.add_row({std::string{to_string(kinds[a])} + " vs " + to_string(kinds[b]),
                     fmt_mean_std(delta.mean(), delta.stddev()),
                     fmt_percent(static_cast<double>(wins) / traces, 0),
                     fmt_double(welch.t, 2), welch.significant_95 ? "yes" : "no"});
    }
  }
  std::printf("%s", table.to_text().c_str());
  if (coordinator.interrupted()) return coordinator.finish();
  collector.finish();
  return coordinator.finish();
}
