#include "obs/profile.hpp"

#include <algorithm>
#include <cmath>

#include "obs/json.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

namespace xres::obs {

namespace {

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::string fmt_eta(double seconds) {
  if (seconds >= 120.0) return fmt_double(seconds / 60.0, 1) + " min";
  return std::to_string(static_cast<long>(std::lround(seconds))) + " s";
}

}  // namespace

void PhaseProfiler::begin(const std::string& name) {
  end();
  open_index_ = phases_.size();
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (phases_[i].name == name) {
      open_index_ = i;
      break;
    }
  }
  if (open_index_ == phases_.size()) phases_.push_back(Phase{name, 0.0});
  open_start_ = std::chrono::steady_clock::now();
}

void PhaseProfiler::end() {
  if (open_index_ == static_cast<std::size_t>(-1)) return;
  phases_[open_index_].seconds += open_elapsed();
  open_index_ = static_cast<std::size_t>(-1);
}

double PhaseProfiler::open_elapsed() const {
  return seconds_between(open_start_, std::chrono::steady_clock::now());
}

std::vector<std::pair<std::string, double>> PhaseProfiler::phases() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(phases_.size());
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    double seconds = phases_[i].seconds;
    if (i == open_index_) seconds += open_elapsed();
    out.emplace_back(phases_[i].name, seconds);
  }
  return out;
}

double PhaseProfiler::total_seconds() const {
  double total = 0.0;
  for (const auto& [name, seconds] : phases()) total += seconds;
  return total;
}

std::string PhaseProfiler::summary() const {
  std::string out;
  for (const auto& [name, seconds] : phases()) {
    if (!out.empty()) out += " + ";
    out += name + " " + fmt_double(seconds, 2) + " s";
  }
  if (out.empty()) return "(no phases)";
  return out + " = " + fmt_double(total_seconds(), 2) + " s";
}

void PhaseProfiler::append_json(JsonWriter& w) const {
  for (const auto& [name, seconds] : phases()) {
    w.key(name + "_s").value(seconds);
  }
}

std::string render_progress(const std::string& unit, std::size_t done,
                            std::size_t total, double elapsed_seconds) {
  XRES_CHECK(total > 0 && done <= total, "bad progress state");
  const double fraction = static_cast<double>(done) / static_cast<double>(total);
  std::string line = unit + " " + std::to_string(done) + "/" + std::to_string(total) +
                     " (" + std::to_string(static_cast<int>(std::lround(fraction * 100.0))) +
                     "%)";
  if (done > 0 && done < total && elapsed_seconds > 0.0) {
    const double eta =
        elapsed_seconds / static_cast<double>(done) * static_cast<double>(total - done);
    line += " eta " + fmt_eta(eta);
  }
  return line;
}

ProgressMeter::ProgressMeter(std::string unit, std::FILE* out)
    : unit_{std::move(unit)},
      out_{out != nullptr ? out : stderr},
      start_{std::chrono::steady_clock::now()},
      last_draw_{} {}

void ProgressMeter::update(std::size_t done, std::size_t total) {
  const auto now = std::chrono::steady_clock::now();
  const bool final = done == total;
  if (!final && drew_ && seconds_between(last_draw_, now) < 0.1) return;
  last_draw_ = now;
  drew_ = true;

  std::string line =
      "  " + render_progress(unit_, done, total, seconds_between(start_, now));
  const std::size_t width = line.size();
  if (width < last_width_) line += std::string(last_width_ - width, ' ');
  last_width_ = width;
  std::fprintf(out_, "\r%s%s", line.c_str(), final ? "\n" : "");
  std::fflush(out_);
}

std::function<void(std::size_t, std::size_t)> ProgressMeter::callback() {
  return [this](std::size_t done, std::size_t total) { update(done, total); };
}

}  // namespace xres::obs
