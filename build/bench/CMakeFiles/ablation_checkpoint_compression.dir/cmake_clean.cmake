file(REMOVE_RECURSE
  "CMakeFiles/ablation_checkpoint_compression.dir/ablation_checkpoint_compression.cpp.o"
  "CMakeFiles/ablation_checkpoint_compression.dir/ablation_checkpoint_compression.cpp.o.d"
  "ablation_checkpoint_compression"
  "ablation_checkpoint_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_checkpoint_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
