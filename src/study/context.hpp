#pragma once

/// \file context.hpp
/// What a study's run function receives: the parsed parameter bindings,
/// the shared harness options, and lazily-constructed obs/recovery
/// plumbing. Laziness is deliberate — the coordinator prints its
/// journal/resume banner when constructed, so a driver touches recovery()
/// at exactly the code point where the pre-registry binary constructed its
/// RecoveryCoordinator, keeping stdout byte-identical.

#include <optional>
#include <string>

#include "study/harness.hpp"
#include "study/options.hpp"
#include "study/registry.hpp"
#include "util/table.hpp"

namespace xres::study {

class StudyContext {
 public:
  StudyContext(const StudyDefinition& def, ParamSet params, HarnessOptions options)
      : def_{&def}, params_{std::move(params)}, options_{std::move(options)} {}

  StudyContext(const StudyContext&) = delete;
  StudyContext& operator=(const StudyContext&) = delete;

  [[nodiscard]] const StudyDefinition& definition() const { return *def_; }
  [[nodiscard]] const ParamSet& params() const { return params_; }
  [[nodiscard]] const HarnessOptions& options() const { return options_; }

  [[nodiscard]] std::uint64_t seed() const { return options_.seed; }
  [[nodiscard]] unsigned threads() const { return options_.threads; }

  /// A trial executor honoring --threads (0 = all hardware threads).
  [[nodiscard]] TrialExecutor make_executor() const {
    return TrialExecutor{options_.threads};
  }

  /// The run's ObsCollector, constructed from --metrics/--trace on first use.
  [[nodiscard]] ObsCollector& collector();

  /// The run's RecoveryCoordinator, constructed on first use — which loads
  /// the resume index, prints the journal banner, opens the journal and
  /// installs the shutdown handlers. The journal is identified by the
  /// study's journal_study() and --seed.
  [[nodiscard]] RecoveryCoordinator& recovery();

  /// Emit \p table as CSV if requested: to --csv-path (with a status
  /// notice) or to stdout preceded by a blank line. No-op when CSV output
  /// was not requested.
  void emit_csv(const Table& table);

 private:
  const StudyDefinition* def_;
  ParamSet params_;
  HarnessOptions options_;
  std::optional<ObsCollector> collector_;
  std::optional<RecoveryCoordinator> recovery_;
};

}  // namespace xres::study
