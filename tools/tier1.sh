#!/usr/bin/env bash
# Tier-1 verification: configure, build and run the full test suite, then
# rebuild the library + tests under ThreadSanitizer and run the executor
# tests (the only concurrent code path) under it.
#
#   tools/tier1.sh [build-dir] [tsan-build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
TSAN_BUILD="${2:-build-tsan}"

cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j "$(nproc)"
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

# TSAN pass: library + tests + the xres CLI (benches/examples just re-link
# the same library code and would double the build time for no extra
# coverage; the CLI is kept so the observed-executor path below runs under
# TSAN too).
cmake -B "$TSAN_BUILD" -S . -DXRES_TSAN=ON \
  -DXRES_BUILD_BENCH=OFF -DXRES_BUILD_EXAMPLES=OFF -DXRES_BUILD_TOOLS=ON
cmake --build "$TSAN_BUILD" -j "$(nproc)"
ctest --test-dir "$TSAN_BUILD" --output-on-failure -R "TrialExecutor|Integration|Obs"

# Observability smoke under TSAN: a threaded study with per-trial metrics
# and tracing enabled exercises the observer hand-off between workers.
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
"$TSAN_BUILD"/tools/xres efficiency --type A32 --trials 4 --threads 4 \
  --metrics "$OBS_TMP/m.json" --trace "$OBS_TMP/t.json" --log-level info \
  > /dev/null
test -s "$OBS_TMP/m.json" && test -s "$OBS_TMP/t.json"

# Crash-safety (docs/ROBUSTNESS.md): SIGKILL a threaded, journaled study
# mid-run, resume it, and require the report and --metrics JSON to be
# byte-identical to an uninterrupted golden run. Also checks graceful
# SIGTERM: drain, flush, exit 75, then a resume that completes the study.
crash_resume_check() {
  local xres_bin="$1" tag="$2" trials="$3" kill_after="$4"
  local dir="$OBS_TMP/resume-$tag"
  mkdir -p "$dir"
  local args=(efficiency --type C64 --trials "$trials" --seed 99 --threads 4)

  "$xres_bin" "${args[@]}" --metrics "$dir/golden.json" > "$dir/golden.txt"

  # Hard kill mid-run. If the race is lost and the run finishes first, the
  # resume below degenerates to a full journal replay — still a valid check.
  "$xres_bin" "${args[@]}" --journal "$dir/j.jsonl" --metrics "$dir/void.json" \
    > /dev/null 2>&1 &
  local pid=$!
  sleep "$kill_after"
  kill -9 "$pid" 2> /dev/null || true
  wait "$pid" 2> /dev/null || true
  test -s "$dir/j.jsonl"

  "$xres_bin" "${args[@]}" --journal "$dir/j.jsonl" --resume \
    --metrics "$dir/resumed.json" > "$dir/resumed.txt"
  # Drop the recovery banner and the artifact-path line (the paths differ by
  # construction; the artifact bytes are compared with cmp below).
  local filter=(grep -v -e '^journal ' -e '^recovery: ' -e '^metrics written to ')
  "${filter[@]}" "$dir/golden.txt" > "$dir/golden-clean.txt"
  "${filter[@]}" "$dir/resumed.txt" > "$dir/resumed-clean.txt"
  cmp "$dir/golden-clean.txt" "$dir/resumed-clean.txt"
  cmp "$dir/golden.json" "$dir/resumed.json"
  "$xres_bin" journal "$dir/j.jsonl" > /dev/null

  # Graceful shutdown: SIGTERM must drain, flush and exit 75 (or win the
  # race and exit 0), and the journal must then resume cleanly.
  "$xres_bin" "${args[@]}" --journal "$dir/j2.jsonl" --metrics "$dir/void2.json" \
    > /dev/null 2>&1 &
  pid=$!
  sleep "$kill_after"
  kill -TERM "$pid" 2> /dev/null || true
  local rc=0
  wait "$pid" || rc=$?
  if [[ "$rc" != 75 && "$rc" != 0 ]]; then
    echo "crash+resume ($tag): expected exit 75 (interrupted) or 0, got $rc" >&2
    return 1
  fi
  "$xres_bin" "${args[@]}" --journal "$dir/j2.jsonl" --resume \
    --metrics "$dir/resumed2.json" > /dev/null
  cmp "$dir/golden.json" "$dir/resumed2.json"
  echo "crash+resume ($tag): OK (SIGTERM exit $rc)"
}
crash_resume_check "$BUILD"/tools/xres normal 1500 1
crash_resume_check "$TSAN_BUILD"/tools/xres tsan 200 2

echo "tier-1 OK"
