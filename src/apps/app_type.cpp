#include "apps/app_type.hpp"

#include "util/check.hpp"

namespace xres {

namespace {

constexpr double kCommFractions[] = {0.0, 0.25, 0.5, 0.75};
constexpr double kMemoryGb[] = {32.0, 64.0};
constexpr char kCommNames[] = {'A', 'B', 'C', 'D'};

AppType make_type(CommClass comm, MemoryClass mem) {
  const auto c = static_cast<std::size_t>(comm);
  const auto m = static_cast<std::size_t>(mem);
  AppType t;
  t.name = std::string{kCommNames[c]} + (m == 0 ? "32" : "64");
  t.comm_fraction = kCommFractions[c];
  t.memory_per_node = DataSize::gigabytes(kMemoryGb[m]);
  return t;
}

}  // namespace

AppType app_type(CommClass comm, MemoryClass mem) { return make_type(comm, mem); }

const std::array<AppType, 8>& all_app_types() {
  static const std::array<AppType, 8> types = [] {
    std::array<AppType, 8> out;
    std::size_t i = 0;
    for (CommClass c : {CommClass::kA, CommClass::kB, CommClass::kC, CommClass::kD}) {
      for (MemoryClass m : {MemoryClass::k32GB, MemoryClass::k64GB}) {
        out[i++] = make_type(c, m);
      }
    }
    return out;
  }();
  return types;
}

AppType app_type_by_name(const std::string& name) {
  for (const AppType& t : all_app_types()) {
    if (t.name == name) return t;
  }
  XRES_CHECK(false, "unknown application type: " + name);
}

}  // namespace xres
