
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resilience/analytic.cpp" "src/resilience/CMakeFiles/xres_resilience.dir/analytic.cpp.o" "gcc" "src/resilience/CMakeFiles/xres_resilience.dir/analytic.cpp.o.d"
  "/root/repo/src/resilience/config.cpp" "src/resilience/CMakeFiles/xres_resilience.dir/config.cpp.o" "gcc" "src/resilience/CMakeFiles/xres_resilience.dir/config.cpp.o.d"
  "/root/repo/src/resilience/interval.cpp" "src/resilience/CMakeFiles/xres_resilience.dir/interval.cpp.o" "gcc" "src/resilience/CMakeFiles/xres_resilience.dir/interval.cpp.o.d"
  "/root/repo/src/resilience/multilevel.cpp" "src/resilience/CMakeFiles/xres_resilience.dir/multilevel.cpp.o" "gcc" "src/resilience/CMakeFiles/xres_resilience.dir/multilevel.cpp.o.d"
  "/root/repo/src/resilience/plan.cpp" "src/resilience/CMakeFiles/xres_resilience.dir/plan.cpp.o" "gcc" "src/resilience/CMakeFiles/xres_resilience.dir/plan.cpp.o.d"
  "/root/repo/src/resilience/planner.cpp" "src/resilience/CMakeFiles/xres_resilience.dir/planner.cpp.o" "gcc" "src/resilience/CMakeFiles/xres_resilience.dir/planner.cpp.o.d"
  "/root/repo/src/resilience/renewal.cpp" "src/resilience/CMakeFiles/xres_resilience.dir/renewal.cpp.o" "gcc" "src/resilience/CMakeFiles/xres_resilience.dir/renewal.cpp.o.d"
  "/root/repo/src/resilience/selector.cpp" "src/resilience/CMakeFiles/xres_resilience.dir/selector.cpp.o" "gcc" "src/resilience/CMakeFiles/xres_resilience.dir/selector.cpp.o.d"
  "/root/repo/src/resilience/technique.cpp" "src/resilience/CMakeFiles/xres_resilience.dir/technique.cpp.o" "gcc" "src/resilience/CMakeFiles/xres_resilience.dir/technique.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/xres_util.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/xres_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/xres_failure.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/xres_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xres_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
