#pragma once

/// \file report.hpp
/// Markdown study reports: a structured record of one experiment run —
/// title, configuration, result tables, notes — written to disk so sweeps
/// leave an auditable artifact (the machine-generated counterpart of
/// EXPERIMENTS.md). Figure harnesses emit one via `--report <path>`.

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/table.hpp"

namespace xres {

class StudyReport {
 public:
  explicit StudyReport(std::string title);

  /// Free-text paragraph (markdown passed through).
  void add_paragraph(const std::string& text);

  /// Configuration entry; rendered as a bullet list in input order.
  void add_config(const std::string& key, const std::string& value);

  /// A captioned result table.
  void add_table(const std::string& caption, Table table);

  /// A metrics section: the set's non-zero metrics as a captioned table
  /// (instrumented breakdown of where simulated time and events went).
  void add_metrics(const std::string& caption, const obs::MetricSet& metrics);

  [[nodiscard]] const std::string& title() const { return title_; }
  [[nodiscard]] std::size_t table_count() const { return tables_.size(); }

  [[nodiscard]] std::string to_markdown() const;

  /// Write to \p path; throws CheckError on I/O failure.
  void write(const std::string& path) const;

 private:
  struct CaptionedTable {
    std::string caption;
    Table table;
  };
  std::string title_;
  std::vector<std::string> paragraphs_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<CaptionedTable> tables_;
};

}  // namespace xres
