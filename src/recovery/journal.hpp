#pragma once

/// \file journal.hpp
/// Append-only, CRC-checksummed write-ahead trial journal — the harness's
/// own resilience layer (docs/ROBUSTNESS.md). Studies run up to hundreds of
/// thousands of deterministic trials; a crash, OOM-kill or Ctrl-C used to
/// lose all of them. With a journal attached, every completed trial is
/// streamed to disk as one self-checking JSONL record, and a re-run with
/// `--resume` replays those records instead of re-simulating — reproducing
/// byte-identical artifacts thanks to the executor's deterministic
/// per-trial seeding and spec-order reduction (core/executor.hpp).
///
/// ## On-disk format (one record per line)
///
///     {"c":"<crc32 hex>","r":<record JSON>}\n
///
/// The CRC-32 (util/crc32.hpp) covers exactly the `<record JSON>` bytes.
/// The first record of a fresh journal is a *meta* record naming the study
/// and its root seed; `ResumeIndex::load` refuses to resume against a
/// journal written by a different study or seed. Data records are
///
///     {"b":"<batch>","i":<index>,"s":<derived seed>,"p":<payload>}
///
/// where (batch, index) identify the trial within the study, the derived
/// seed fingerprints the spec (a changed sweep invalidates stale records
/// instead of corrupting results), and the payload is the serialized
/// outcome (recovery/trial_record.hpp).
///
/// ## Crash tolerance
///
/// Appends are batched and fsync'd every `flush_every` records, so a crash
/// loses at most one batch of trials — they are simply re-run on resume. A
/// torn final line (the usual SIGKILL artifact) fails its CRC and is
/// dropped with a warning; a corrupt record mid-file is skipped the same
/// way. Neither is ever undefined behavior or a crash: the worst outcome is
/// re-simulating the lost trials.
///
/// All writes go through the fault-injectable wrappers in util/io.hpp with
/// the critical-artifact policy (docs/ROBUSTNESS.md): transient EIO / short
/// writes / failed fsyncs retry with backoff (a retried append first
/// isolates any partial line behind a '\n' so the loader drops it alone);
/// persistent failures throw io::IoError, which drivers map to exit 75 for
/// ENOSPC (journal intact, resume later) and exit 1 otherwise.

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace xres::recovery {

/// Identity of the study that owns a journal. Resume requires an exact
/// match: replaying another study's results would silently corrupt every
/// downstream statistic.
struct JournalMeta {
  std::string study;         ///< harness name, e.g. "fig1_efficiency_a32"
  std::uint64_t root_seed{0};
  std::uint32_t version{1};  ///< journal format version
};

/// One journaled trial outcome.
struct JournalRecord {
  std::string batch;        ///< batch label within the study ("" is valid)
  std::uint64_t index{0};   ///< spec index within the batch
  std::uint64_t seed{0};    ///< the trial's derived seed (spec fingerprint)
  std::string payload;      ///< serialized outcome (one JSON object)
};

/// Frame \p record_json as one journal line (CRC prefix + trailing '\n').
[[nodiscard]] std::string frame_journal_line(const std::string& record_json);

/// Inverse of frame_journal_line for one line (no trailing '\n'): returns
/// true and fills \p record_json only when the frame parses and the CRC
/// matches.
[[nodiscard]] bool unframe_journal_line(std::string_view line, std::string& record_json);

/// Serialize / parse the record JSON between frame and payload. Parse
/// throws JsonParseError on malformed records (the loader treats that the
/// same as a CRC failure).
[[nodiscard]] std::string to_record_json(const JournalRecord& record);
[[nodiscard]] std::string to_meta_json(const JournalMeta& meta);

/// Append-side of the journal. Thread-safe: `TrialExecutor` workers stream
/// completed trials from every thread; appends are serialized internally
/// and fsync'd every \p flush_every records (and on flush()/destruction).
class TrialJournal {
 public:
  /// Opens \p path for append, creating it (plus the meta record) when new
  /// or empty. Resuming callers validate the existing meta with
  /// `ResumeIndex::load` *before* constructing the writer. Throws
  /// CheckError when the file cannot be opened.
  TrialJournal(std::string path, JournalMeta meta, std::size_t flush_every = 32);
  ~TrialJournal();

  TrialJournal(const TrialJournal&) = delete;
  TrialJournal& operator=(const TrialJournal&) = delete;

  /// Append one record (framed, CRC'd). Thread-safe.
  void append(const JournalRecord& record);

  /// Flush buffered records to stable storage (fsync). Thread-safe.
  void flush();

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const JournalMeta& meta() const { return meta_; }
  /// Records appended through this writer (excludes the meta record).
  [[nodiscard]] std::size_t appended() const;

 private:
  /// Write one framed line / fsync, both with the critical-artifact retry
  /// policy (util/io.hpp); throw io::IoError on persistent failure. Callers
  /// hold mutex_.
  void append_line_locked(const std::string& line);
  void fsync_locked();

  std::string path_;
  JournalMeta meta_;
  std::size_t flush_every_;
  mutable std::mutex mutex_;
  std::FILE* file_{nullptr};
  std::size_t unflushed_{0};
  std::size_t appended_{0};
};

/// What the tolerant loader observed (all surfaced as warnings, never UB).
struct JournalLoadStats {
  std::size_t valid_records{0};
  std::size_t corrupt_records{0};    ///< bad frame/CRC mid-file (skipped)
  std::size_t duplicate_records{0};  ///< repeated (batch, index); first wins
  bool torn_tail{false};             ///< trailing partial record dropped
  bool found{false};                 ///< the journal file existed
};

/// Read-side of the journal: loads every valid record into a (batch, index)
/// map for O(1) resume lookups.
class ResumeIndex {
 public:
  /// Tolerantly load \p path. A missing file yields an empty index (fresh
  /// start). A journal whose meta does not match \p expected (study name,
  /// root seed, version) throws CheckError — resuming someone else's
  /// results must fail loudly. Torn/corrupt records are logged and skipped.
  [[nodiscard]] static ResumeIndex load(const std::string& path,
                                        const JournalMeta& expected);

  /// The record for (batch, index), or nullptr. Callers compare the
  /// record's seed against the spec's derived seed before trusting it.
  [[nodiscard]] const JournalRecord* find(const std::string& batch,
                                          std::uint64_t index) const;

  [[nodiscard]] const JournalLoadStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }

 private:
  static std::string key(const std::string& batch, std::uint64_t index);

  std::unordered_map<std::string, JournalRecord> records_;
  JournalLoadStats stats_;
};

}  // namespace xres::recovery
