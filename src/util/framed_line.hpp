#pragma once

/// \file framed_line.hpp
/// Self-checking JSONL framing shared by the append-only logs (the trial
/// journal, recovery/journal.hpp, and the run ledger, obs/ledger.hpp):
///
///     {"c":"<crc32 hex>","r":<record JSON>}\n
///
/// The CRC-32 (util/crc32.hpp) covers exactly the `<record JSON>` bytes, so
/// a torn final line (the usual SIGKILL artifact) or a corrupted record
/// fails its checksum and can be dropped by a tolerant reader instead of
/// poisoning the whole file.

#include <string>
#include <string_view>

namespace xres {

/// Frame \p record_json as one framed line (CRC prefix + trailing '\n').
[[nodiscard]] std::string frame_crc_line(std::string_view record_json);

/// Inverse of frame_crc_line for one line (no trailing '\n'): returns true
/// and fills \p record_json only when the frame parses and the CRC matches.
[[nodiscard]] bool unframe_crc_line(std::string_view line, std::string& record_json);

}  // namespace xres
