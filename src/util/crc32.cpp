#include "util/crc32.hpp"

#include <array>

namespace xres {

namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFU;
  for (char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFU] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

std::string crc32_hex(std::uint32_t crc) {
  static const char* digits = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[crc & 0xFU];
    crc >>= 4;
  }
  return out;
}

}  // namespace xres
