// Reproduces paper Figure 5: dropped applications for each resource
// management technique using Parallel Recovery vs. using per-application
// Resilience Selection, over four arrival-pattern types (unbiased,
// high-memory, high-communication, large applications).

#include <cstdio>

#include "common.hpp"
#include "core/workload_study.hpp"
#include "obs/profile.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace xres;
  CliParser cli{
      "fig5_resilience_selection — paper Figure 5: Parallel Recovery vs. "
      "Resilience Selection per scheduler, over four workload biases."};
  cli.add_option("--patterns", "arrival patterns per combo (paper: 50)", "50");
  cli.add_option("--seed", "root RNG seed", "20170530");
  add_threads_option(cli);
  cli.add_flag("--csv", "also emit raw CSV");
  bench::add_obs_options(cli, /*with_trace=*/false);
  bench::add_recovery_options(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  const bench::ObsOptions obs = bench::read_obs_options(cli);
  const bench::RecoveryCliOptions rec = bench::read_recovery_options(cli);

  const auto patterns = static_cast<std::uint32_t>(cli.integer("--patterns"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("--seed"));
  const auto threads = parse_threads_option(cli);

  std::printf("Figure 5: Parallel Recovery vs. Resilience Selection\n\n");

  bench::RecoveryCoordinator coordinator{rec, "fig5_resilience_selection", seed};

  obs::PhaseProfiler profiler;
  profiler.begin("run");
  obs::MetricSet merged;
  Table table{{"arrival pattern", "scheduler", "resilience", "dropped %", "std %"}};
  for (WorkloadBias bias :
       {WorkloadBias::kUnbiased, WorkloadBias::kHighMemory,
        WorkloadBias::kHighCommunication, WorkloadBias::kLargeApps}) {
    WorkloadStudyConfig study;
    study.patterns = patterns;
    study.seed = seed;
    study.threads = threads;
    study.workload.bias = bias;
    study.collect_metrics = obs.metrics();
    study.recovery = coordinator.options();
    // One journal batch per bias: the four studies share index space.
    study.recovery_batch = std::string{"bias:"} + to_string(bias);

    std::fprintf(stderr, "bias: %s\n", to_string(bias));
    obs::ProgressMeter meter{"pattern-run"};
    recovery::BatchReport report;
    const auto results =
        run_workload_study(study, figure5_combos(), meter.callback(), &report);
    coordinator.absorb(report);
    if (coordinator.interrupted()) return coordinator.finish();
    for (const WorkloadComboResult& r : results) {
      table.add_row({to_string(bias), to_string(r.combo.scheduler),
                     r.combo.policy.name(),
                     fmt_double(r.dropped_fraction.mean * 100.0, 2),
                     fmt_double(r.dropped_fraction.stddev * 100.0, 2)});
      // Bias and combo order are fixed, so the merge order (and the
      // artifact) is thread-count-invariant.
      if (r.metrics.has_value()) merged.merge(*r.metrics);
    }
  }

  profiler.begin("reduce");
  std::printf("%s", table.to_text().c_str());
  if (cli.flag("--csv")) std::printf("\n%s", table.to_csv().c_str());

  if (obs.metrics()) {
    std::printf("\nInstrumented breakdown (whole study):\n%s",
                merged.to_table().to_text().c_str());
    merged.write_json(obs.metrics_path);
    std::printf("metrics written to %s\n", obs.metrics_path.c_str());
  }

  profiler.end();
  std::printf("(phases: %s)\n", profiler.summary().c_str());
  return coordinator.finish();
}
