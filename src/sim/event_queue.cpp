#include "sim/event_queue.hpp"

#include <utility>

#include "util/check.hpp"

namespace xres {

EventId EventQueue::schedule(TimePoint when, EventCallback callback) {
  XRES_CHECK(static_cast<bool>(callback), "event callback must be non-empty");
  const auto id = EventId{next_id_++};
  heap_.push(Entry{when, next_seq_++, id});
  live_.emplace(id, std::move(callback));
  return id;
}

bool EventQueue::cancel(EventId id) { return live_.erase(id) > 0; }

bool EventQueue::pending(EventId id) const { return live_.contains(id); }

void EventQueue::skip_dead() const {
  while (!heap_.empty() && !live_.contains(heap_.top().id)) heap_.pop();
}

std::optional<TimePoint> EventQueue::next_time() const {
  skip_dead();
  if (heap_.empty()) return std::nullopt;
  return heap_.top().time;
}

std::optional<FiredEvent> EventQueue::pop() {
  skip_dead();
  if (heap_.empty()) return std::nullopt;
  const Entry top = heap_.top();
  heap_.pop();
  auto it = live_.find(top.id);
  XRES_CHECK(it != live_.end(), "live map out of sync with heap");
  FiredEvent fired{top.id, top.time, std::move(it->second)};
  live_.erase(it);
  return fired;
}

void EventQueue::clear() {
  live_.clear();
  while (!heap_.empty()) heap_.pop();
}

}  // namespace xres
