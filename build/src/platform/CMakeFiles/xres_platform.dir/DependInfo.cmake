
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/allocator.cpp" "src/platform/CMakeFiles/xres_platform.dir/allocator.cpp.o" "gcc" "src/platform/CMakeFiles/xres_platform.dir/allocator.cpp.o.d"
  "/root/repo/src/platform/machine.cpp" "src/platform/CMakeFiles/xres_platform.dir/machine.cpp.o" "gcc" "src/platform/CMakeFiles/xres_platform.dir/machine.cpp.o.d"
  "/root/repo/src/platform/spec.cpp" "src/platform/CMakeFiles/xres_platform.dir/spec.cpp.o" "gcc" "src/platform/CMakeFiles/xres_platform.dir/spec.cpp.o.d"
  "/root/repo/src/platform/transfer.cpp" "src/platform/CMakeFiles/xres_platform.dir/transfer.cpp.o" "gcc" "src/platform/CMakeFiles/xres_platform.dir/transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/xres_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
