// Ablation: sensitivity of multilevel checkpointing to the failure
// severity PMF. The paper adopts BlueGene/L-derived per-level ratios from
// Moody et al. [3] whose exact values are not published; DESIGN.md §5
// documents our default. This sweep shows the conclusion (multilevel >>
// single-level checkpointing when most failures are cheap to recover) is
// robust across plausible PMFs and quantifies where it erodes.

#include <cstdio>
#include <vector>

#include "apps/app_type.hpp"
#include "core/single_app_study.hpp"
#include "study/context.hpp"
#include "study/platform_params.hpp"
#include "study/registry.hpp"

namespace {
using namespace xres;

int run(study::StudyContext& ctx) {
  const auto trials = ctx.params().u32("trials");
  const std::uint64_t seed = ctx.seed();
  const TrialExecutor executor = ctx.make_executor();
  study::ObsCollector& collector = ctx.collector();
  study::RecoveryCoordinator& coordinator = ctx.recovery();

  const std::vector<std::pair<const char*, std::vector<double>>> pmfs{
      {"paper default {.55,.35,.10}", {0.55, 0.35, 0.10}},
      {"mostly transient {.80,.15,.05}", {0.80, 0.15, 0.05}},
      {"uniform {.33,.33,.33}", {1.0, 1.0, 1.0}},
      {"mostly severe {.10,.20,.70}", {0.10, 0.20, 0.70}},
      {"all severe {0,0,1}", {0.0, 0.0, 1.0}},
  };

  std::printf("Ablation: multilevel checkpointing vs. severity PMF\n");
  std::printf("application D64 @ 25%% of the exascale system, MTBF 10 y, %u trials\n\n",
              trials);

  Table table{{"severity PMF", "multilevel eff", "checkpoint-restart eff", "ML advantage"}};
  for (const auto& [name, weights] : pmfs) {
    SingleAppTrialConfig config;
    study::apply_platform_params(config.machine, ctx.params());
    config.app = AppSpec{app_type_by_name("D64"), 30000, 1440};
    config.resilience.severity_weights = weights;

    std::vector<TrialSpec> ml_specs;
    std::vector<TrialSpec> cr_specs;
    for (std::uint32_t t = 0; t < trials; ++t) {
      config.technique = TechniqueKind::kMultilevel;
      ml_specs.push_back(TrialSpec{config, {1, t}});
      config.technique = TechniqueKind::kCheckpointRestart;
      cr_specs.push_back(TrialSpec{config, {2, t}});
    }
    RunningStats ml;
    RunningStats cr;
    for (const ExecutionResult& r : collector.run_batch(
             executor, seed, ml_specs, std::string{name} + " [multilevel]", coordinator)) {
      ml.add(r.efficiency);
    }
    for (const ExecutionResult& r : collector.run_batch(
             executor, seed, cr_specs, std::string{name} + " [checkpoint-restart]", coordinator)) {
      cr.add(r.efficiency);
    }
    table.add_row({name, fmt_mean_std(ml.mean(), ml.stddev()),
                   fmt_mean_std(cr.mean(), cr.stddev()),
                   fmt_double(ml.mean() - cr.mean(), 3)});
  }
  std::printf("%s", table.to_text().c_str());
  if (coordinator.interrupted()) return coordinator.finish();
  collector.finish();
  std::printf("(multilevel's advantage shrinks as severe failures dominate, but it\n"
              " never does worse than single-level checkpointing: with an all-severe\n"
              " PMF its optimizer degenerates to the PFS-only schedule)\n");
  return coordinator.finish();
}

study::StudyDefinition make() {
  study::StudyDefinition def;
  def.name = "ablation_severity_pmf";
  def.group = study::StudyGroup::kAblation;
  def.description =
      "sensitivity of the multilevel-checkpointing advantage to the failure "
      "severity PMF";
  def.summary = "ablation_severity_pmf — multilevel efficiency vs. severity PMF";
  def.options.default_seed = 7;
  def.params.integer("trials", "trials per PMF", 60).min(1);
  def.run = run;
  return def;
}

const study::Registration registered{make()};

}  // namespace
