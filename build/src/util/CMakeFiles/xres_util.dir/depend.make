# Empty dependencies file for xres_util.
# This may be replaced when dependencies are built.
