file(REMOVE_RECURSE
  "CMakeFiles/xres_bench_common.dir/common.cpp.o"
  "CMakeFiles/xres_bench_common.dir/common.cpp.o.d"
  "libxres_bench_common.a"
  "libxres_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xres_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
