#pragma once

/// \file callback.hpp
/// SmallCallback: the event engine's type-erased `void()` callable.
///
/// `std::function<void()>` served this role originally, but it costs the hot
/// path twice: libstdc++'s inline buffer is only two words, so any capture
/// beyond 16 bytes heap-allocates (one malloc/free per scheduled event), and
/// it drags in copy machinery the engine never uses. SmallCallback is
/// move-only with a 48-byte inline buffer — sized so every capture the
/// simulator's clients actually schedule (see docs/PERFORMANCE.md for the
/// audit) stays inline, including a whole `std::function<void()>` (32 bytes,
/// the self-scheduling-tick idiom in tests and benchmarks). Larger or
/// over-aligned callables still work via a heap fallback, they just pay the
/// allocation the hot path avoids.
///
/// Dispatch is a single ops-table pointer (invoke / relocate / destroy), so
/// an engaged callback is exactly one branch + one indirect call, and the
/// whole object is 56 bytes — an event slot (callback + bookkeeping, see
/// event_queue.hpp) fits one cache line.

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace xres {

class SmallCallback {
 public:
  /// Captures up to this many bytes are stored inline (no allocation).
  static constexpr std::size_t kInlineCapacity = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  /// True when a callable of type \p F (after decay) is stored inline.
  template <typename F>
  static constexpr bool stores_inline =
      sizeof(std::decay_t<F>) <= kInlineCapacity &&
      alignof(std::decay_t<F>) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<std::decay_t<F>>;

  constexpr SmallCallback() noexcept = default;
  constexpr SmallCallback(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (stores_inline<F>) {
      ::new (static_cast<void*>(buffer_)) D(std::forward<F>(f));
      ops_ = &InlineOps<D>::ops;
    } else {
      ::new (static_cast<void*>(buffer_)) D*(new D(std::forward<F>(f)));
      ops_ = &HeapOps<D>::ops;
    }
  }

  SmallCallback(SmallCallback&& other) noexcept : ops_{other.ops_} {
    if (ops_ != nullptr) relocate_from(other);
    other.ops_ = nullptr;
  }

  SmallCallback& operator=(SmallCallback&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) relocate_from(other);
      other.ops_ = nullptr;
    }
    return *this;
  }

  SmallCallback(const SmallCallback&) = delete;
  SmallCallback& operator=(const SmallCallback&) = delete;

  ~SmallCallback() { reset(); }

  /// Destroy the held callable (no-op when empty).
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(buffer_);
      ops_ = nullptr;
    }
  }

  void operator()() { ops_->invoke(buffer_); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-construct the callable from \p from into \p to, destroying the
    /// source. nullptr means trivially relocatable: copying the raw buffer
    /// is the move (trivially-copyable inline callables, and heap storage
    /// where the buffer just holds the owning pointer). Most events the
    /// simulator schedules capture only pointers and PODs, so the common
    /// move is a 48-byte memcpy instead of an indirect call.
    void (*relocate)(void* from, void* to) noexcept;
    /// nullptr when destruction is a no-op (trivially destructible inline
    /// callables) so reset() on the hot path skips the indirect call.
    void (*destroy)(void* storage) noexcept;
  };

  /// Steal \p other's callable; ops_ must already equal other.ops_ and be
  /// non-null. Does not clear other.ops_.
  void relocate_from(SmallCallback& other) noexcept {
    if (ops_->relocate != nullptr) {
      ops_->relocate(other.buffer_, buffer_);
    } else {
      std::memcpy(buffer_, other.buffer_, kInlineCapacity);
    }
  }

  template <typename D>
  struct InlineOps {
    static void invoke(void* storage) { (*std::launder(static_cast<D*>(storage)))(); }
    static void relocate(void* from, void* to) noexcept {
      D* src = std::launder(static_cast<D*>(from));
      ::new (to) D(std::move(*src));
      src->~D();
    }
    static void destroy(void* storage) noexcept {
      std::launder(static_cast<D*>(storage))->~D();
    }
    static constexpr Ops ops{&invoke,
                             std::is_trivially_copyable_v<D> ? nullptr : &relocate,
                             std::is_trivially_destructible_v<D> ? nullptr : &destroy};
  };

  template <typename D>
  struct HeapOps {
    static D*& ptr(void* storage) { return *std::launder(static_cast<D**>(storage)); }
    static void invoke(void* storage) { (*ptr(storage))(); }
    static void destroy(void* storage) noexcept { delete ptr(storage); }
    // relocate is nullptr: moving the owning pointer is a buffer copy.
    static constexpr Ops ops{&invoke, nullptr, &destroy};
  };

  alignas(kInlineAlign) std::byte buffer_[kInlineCapacity];
  const Ops* ops_{nullptr};
};

}  // namespace xres
