// Reproduces paper Figure 2: resilience-technique efficiency at increasing
// percentages of total system use for the high-memory, high-communication
// application D64, with a 10-year processor MTBF. The headline feature is
// the optimal-technique crossover from multilevel checkpointing to
// parallel recovery around 25% of the system.

#include "apps/app_type.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace xres;
  CliParser cli{
      "fig2_efficiency_d64 — paper Figure 2: efficiency vs. application size "
      "for D64 (high memory, 75% communication), node MTBF 10 years."};
  bench::add_common_options(cli, 200);
  if (!cli.parse_or_exit(argc, argv)) return 0;

  EfficiencyStudyConfig config;
  config.app_type = app_type_by_name("D64");
  config.resilience.node_mtbf = Duration::years(10.0);
  return bench::run_efficiency_figure(
      "Figure 2: efficiency vs. system share, application D64, MTBF 10 y",
      config, bench::read_common_options(cli));
}
