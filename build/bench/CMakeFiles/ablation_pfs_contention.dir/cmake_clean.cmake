file(REMOVE_RECURSE
  "CMakeFiles/ablation_pfs_contention.dir/ablation_pfs_contention.cpp.o"
  "CMakeFiles/ablation_pfs_contention.dir/ablation_pfs_contention.cpp.o.d"
  "ablation_pfs_contention"
  "ablation_pfs_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pfs_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
