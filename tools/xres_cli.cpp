// xres — unified command-line driver for the library's studies.
//
//   xres list --markdown
//   xres run fig1_efficiency_a32 --set trials=50
//   xres describe ablation_severity_pmf
//   xres suite paper --out-dir out/paper
//   xres efficiency --type D64 --mtbf-years 10 --trials 50
//   xres workload  --scheduler Slack --technique selection --patterns 10
//   xres advise    --type C64 --system-share 0.25
//   xres trace     --mtbf-years 10 --days 7 --out failures.csv
//   xres info
//
// Each subcommand accepts --help. Every paper figure/table/ablation/
// extension lives in the xres::study registry (src/study/); the bench
// binaries are thin aliases of `xres run <study>`.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "study/runlog.hpp"
#include "util/io.hpp"
#include "xres.hpp"

namespace {

using namespace xres;

int cmd_info() {
  std::printf("xres %s — exascale resilience simulation library\n", kVersionString);
  std::printf("machine: %s\n", MachineSpec::exascale().describe().c_str());
  std::printf("application types:");
  for (const AppType& t : all_app_types()) std::printf(" %s", t.name.c_str());
  std::printf("\ntechniques:");
  for (TechniqueKind kind : evaluated_techniques()) std::printf(" %s", to_string(kind));
  std::printf(" %s", to_string(TechniqueKind::kSemiBlockingCheckpoint));
  std::printf("\nschedulers:");
  for (SchedulerKind kind : extended_schedulers()) std::printf(" %s", to_string(kind));
  std::printf("\nstudies:   %zu registered — see `xres list`\n",
              study::StudyRegistry::instance().size());
  return 0;
}

const char* group_heading(study::StudyGroup group) {
  switch (group) {
    case study::StudyGroup::kFigure: return "Figures";
    case study::StudyGroup::kTable: return "Tables";
    case study::StudyGroup::kAblation: return "Ablations";
    case study::StudyGroup::kExtension: return "Extensions";
    case study::StudyGroup::kAdhoc: return "Ad-hoc exploration";
  }
  return "?";
}

constexpr study::StudyGroup kGroupOrder[] = {
    study::StudyGroup::kFigure, study::StudyGroup::kTable,
    study::StudyGroup::kAblation, study::StudyGroup::kExtension,
    study::StudyGroup::kAdhoc};

/// One line summarizing the harness options a study exposes, for
/// describe/--markdown output.
std::string options_line(const study::StudyOptionsSpec& spec) {
  std::string out;
  const auto add = [&out](const char* flag) {
    if (!out.empty()) out += ", ";
    out += flag;
  };
  if (spec.seed) add("--seed");
  if (spec.threads) add("--threads");
  if (spec.csv) add("--csv/--csv-path");
  if (spec.chart) add("--chart");
  if (spec.report) add("--report");
  if (spec.obs != study::StudyOptionsSpec::Obs::kNone) {
    add("--metrics");
    if (spec.obs == study::StudyOptionsSpec::Obs::kWithTrace) add("--trace");
    add("--log-level");
  }
  if (spec.recovery) add("--journal/--resume/--trial-timeout/--trial-retries");
  if (out.empty()) out = "none (static output)";
  return out;
}

void list_text() {
  const auto all = study::StudyRegistry::instance().all();
  std::size_t width = 0;
  for (const study::StudyDefinition* def : all) {
    width = std::max(width, def->name.size());
  }
  for (study::StudyGroup group : kGroupOrder) {
    bool any = false;
    for (const study::StudyDefinition* def : all) {
      if (def->group != group) continue;
      if (!any) std::printf("%s:\n", group_heading(group));
      any = true;
      std::printf("  %-*s  %s\n", static_cast<int>(width), def->name.c_str(),
                  def->description.c_str());
    }
    if (any) std::printf("\n");
  }
  std::printf("run 'xres describe <study>' for the parameter schema and\n"
              "'xres run <study> [--set key=value ...]' to execute one\n");
}

void list_markdown() {
  std::printf("# Study catalog\n\n");
  std::printf("Every paper figure, table, ablation and extension experiment is\n"
              "registered in the `xres::study` registry (src/study/). Run one with\n"
              "`xres run <study> [--set key=value ...]` or its bench alias binary;\n"
              "`xres suite paper --out-dir <dir>` regenerates every figure/table\n"
              "artifact with a checksummed manifest. Studies can also be derived\n"
              "at runtime from TOML/JSON spec files (`xres run --from spec.toml`)\n"
              "and fanned across parameter grids (`xres sweep <study> --axis\n"
              "key=v1,v2,...`) — see docs/SPECS.md.\n\n");
  std::printf(
      "Efficiency studies take a `surrogate` parameter (`--set\n"
      "surrogate=sim|analytic|auto`, sweepable like any other axis):\n\n"
      "- `sim` (default) — every sweep cell is fully simulated.\n"
      "- `analytic` — only anchor cells (every other sweep size, plus the\n"
      "  endpoints) are simulated, with the exact per-trial seeds the `sim`\n"
      "  path would use, so anchor rows are bit-identical to a full run.\n"
      "  Interior cells are answered from the closed-form analytic model\n"
      "  (paper Eqs. 1-8, src/resilience/analytic) corrected by linear\n"
      "  interpolation of the anchor residuals, and each carries an error\n"
      "  bound: |residual spread between its anchors| + 2x both anchors'\n"
      "  standard error + a curvature margin (0.02 flat + 0.30x the\n"
      "  anchors' machine-share span squared). The run prints a \"Surrogate\n"
      "  provenance\" table naming each cell's source (anchor / surrogate /\n"
      "  fallback / sim) with its analytic value, prediction and bound.\n"
      "- `auto` — like `analytic`, but any interior cell whose bound\n"
      "  exceeds 0.05 falls back to full simulation (counted in the\n"
      "  `surrogate_fallbacks` perf counter; answered cells count as\n"
      "  `surrogate_hits`, and both land in the run ledger).\n\n"
      "Surrogate-answered cells carry zero-count summaries (no fake\n"
      "spread); anchors are memoized per process, keyed by the full cell\n"
      "configuration, and the memo is bypassed whenever per-trial side\n"
      "effects matter (--metrics, --trace, --journal). The contract —\n"
      "anchors bit-identical, predictions within the reported bound — is\n"
      "enforced by tests/surrogate_diff_test.cpp.\n\n");
  std::printf("Generated by `xres list --markdown` — do not edit by hand.\n");
  const auto all = study::StudyRegistry::instance().all();
  for (study::StudyGroup group : kGroupOrder) {
    bool any = false;
    for (const study::StudyDefinition* def : all) {
      if (def->group != group) continue;
      if (!any) std::printf("\n## %s\n", group_heading(group));
      any = true;
      std::printf("\n### `%s`\n\n%s\n", def->name.c_str(), def->description.c_str());
      if (!def->params.empty()) {
        std::printf("\n| parameter | type | default | range | description |\n");
        std::printf("|---|---|---|---|---|\n");
        for (const study::ParamSpec& p : def->params) {
          const std::string range = p.range_text();
          std::printf("| `%s` | %s | `%s` | %s | %s |\n", p.key.c_str(),
                      p.type_name(), p.default_value.c_str(),
                      range.empty() ? "—" : range.c_str(), p.help.c_str());
        }
      }
      std::printf("\nHarness options: %s", options_line(def->options).c_str());
      if (def->options.seed) {
        std::printf(" (default seed %llu)",
                    static_cast<unsigned long long>(def->options.default_seed));
      }
      std::printf("\n");
    }
  }
}

int cmd_list(int argc, const char* const* argv) {
  CliParser cli{"xres list — the registered study catalog, grouped"};
  cli.add_flag("--markdown", "emit the catalog as markdown (docs/STUDIES.md)");
  cli.add_flag("--json", "emit the catalog as JSON (schemas included)");
  if (!cli.parse_or_exit(argc, argv)) return 0;
  if (cli.flag("--markdown") && cli.flag("--json")) {
    CliParser::usage_error("pick one of --markdown and --json");
  }
  if (cli.flag("--json")) {
    std::printf("%s\n", study::catalog_json().c_str());
  } else if (cli.flag("--markdown")) {
    list_markdown();
  } else {
    list_text();
  }
  return 0;
}

int cmd_describe(int argc, const char* const* argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "-h") == 0) {
    std::fputs("usage: xres describe <study> [--json]\n\n"
               "print a study's group, description, parameter schema and the\n"
               "harness options it accepts; see `xres list` for the catalog.\n"
               "--json emits the machine-readable form (the same schema\n"
               "serialization spec files bind against, docs/SPECS.md)\n",
               argc < 2 ? stderr : stdout);
    return argc < 2 ? 1 : 0;
  }
  bool json = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      CliParser::usage_error(std::string{"unknown option for xres describe: "} +
                             argv[i]);
    }
  }
  const study::StudyDefinition* def = study::StudyRegistry::instance().find(argv[1]);
  if (def == nullptr) {
    std::fprintf(stderr, "unknown study '%s' — see `xres list` for the catalog\n",
                 argv[1]);
    return 1;
  }
  if (json) {
    std::printf("%s\n", study::describe_study_json(*def).c_str());
    return 0;
  }
  std::printf("study:       %s\n", def->name.c_str());
  std::printf("group:       %s\n", study::to_string(def->group));
  std::printf("description: %s\n", def->description.c_str());
  if (def->journal_study() != def->name) {
    std::printf("journal id:  %s\n", def->journal_study().c_str());
  }
  if (def->params.empty()) {
    std::printf("parameters:  none\n");
  } else {
    std::printf("parameters:\n");
    for (const study::ParamSpec& p : def->params) {
      const std::string range = p.range_text();
      std::printf("  %-14s %-6s default %-10s %s%s%s\n", p.key.c_str(), p.type_name(),
                  p.default_value.c_str(), p.help.c_str(), range.empty() ? "" : " ",
                  range.c_str());
    }
  }
  std::printf("options:     %s\n", options_line(def->options).c_str());
  if (def->options.seed) {
    std::printf("default seed %llu\n",
                static_cast<unsigned long long>(def->options.default_seed));
  }
  return 0;
}

int cmd_run(int argc, const char* const* argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "-h") == 0) {
    std::fputs("usage: xres run <study>            [--set key=value ...] [harness options]\n"
               "       xres run --from <spec.toml> [--set key=value ...] [harness options]\n\n"
               "execute a registered study, or one defined at runtime by a\n"
               "TOML/JSON spec file (docs/SPECS.md). `--set key=value` binds a\n"
               "schema parameter (an unknown key is a usage error); harness\n"
               "options (--seed, --threads, --csv, --metrics, --journal, ...)\n"
               "pass through unchanged. `xres run <study> --help` lists all of\n"
               "them.\n",
               argc < 2 ? stderr : stdout);
    return argc < 2 ? 1 : 0;
  }
  const std::string name = argv[1];
  study::LoadedStudy loaded;  // keeps a spec-defined definition alive
  const study::StudyDefinition* from_def = nullptr;
  int first_arg = 2;
  if (name == "--from") {
    if (argc < 3) CliParser::usage_error("--from needs a spec file path");
    loaded = study::load_study_from_file_or_exit(argv[2]);
    from_def = loaded.def.get();
    first_arg = 3;
  }
  // Translate each `--set key=value` into the study parser's native
  // `--key=value`; an unknown key then fails parse with exit 2, exactly as
  // a typo'd option on the bench alias binary would.
  std::vector<std::string> args;
  args.emplace_back("xres run " +
                    (from_def != nullptr ? from_def->name : name));  // argv[0]
  for (int i = first_arg; i < argc; ++i) {
    if (std::strcmp(argv[i], "--set") == 0) {
      if (i + 1 >= argc) CliParser::usage_error("--set needs a key=value binding");
      const std::string binding = argv[++i];
      const std::size_t eq = binding.find('=');
      if (eq == std::string::npos || eq == 0) {
        CliParser::usage_error("--set expects key=value, got '" + binding + "'");
      }
      args.push_back("--" + binding);
    } else {
      args.emplace_back(argv[i]);
    }
  }
  std::vector<const char*> sub_argv;
  sub_argv.reserve(args.size());
  for (const std::string& a : args) sub_argv.push_back(a.c_str());
  if (from_def != nullptr) {
    return study::study_main(*from_def, static_cast<int>(sub_argv.size()),
                             sub_argv.data());
  }
  return study::study_main(name, static_cast<int>(sub_argv.size()), sub_argv.data());
}

int cmd_suite(int argc, const char* const* argv) {
  const char* usage =
      "usage: xres suite paper  --out-dir <dir> [--trials N] [--threads N] [--resume]\n"
      "       xres suite verify --out-dir <dir>\n\n"
      "paper:  run every figure/table study with artifacts, captured stdout\n"
      "        and trial journals under --out-dir, then write manifest.json\n"
      "        (study, params, seed, git describe, artifact CRC32s). Two runs\n"
      "        with the same options are byte-identical, whatever --threads\n"
      "        says; after a crash or SIGKILL, --resume completes the suite\n"
      "        from the journals with identical artifacts.\n"
      "verify: re-checksum an output directory against its manifest\n";
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "-h") == 0) {
    std::fputs(usage, argc < 2 ? stderr : stdout);
    return argc < 2 ? 1 : 0;
  }
  const std::string mode = argv[1];
  if (mode == "paper") {
    CliParser cli{"xres suite paper — regenerate every paper figure/table artifact"};
    cli.add_option("--out-dir", "write artifacts, journals/ and manifest.json here", "");
    cli.add_option("--trials", "override every study's trials/patterns/traces "
                   "parameter (0 = study defaults)", "0");
    add_threads_option(cli);
    cli.add_flag("--resume", "resume a killed suite run from its journals");
    if (!cli.parse_or_exit(argc - 1, argv + 1)) return 0;
    study::SuiteOptions options;
    options.out_dir = cli.str("--out-dir");
    if (options.out_dir.empty()) CliParser::usage_error("--out-dir is required");
    const std::int64_t trials = cli.integer("--trials");
    if (trials < 0) CliParser::usage_error("--trials must be >= 0");
    options.trials = static_cast<std::uint32_t>(trials);
    options.threads = parse_threads_option(cli);
    options.resume = cli.flag("--resume");
    return study::run_suite_paper(options);
  }
  if (mode == "verify") {
    CliParser cli{"xres suite verify — re-checksum a suite directory against its manifest"};
    cli.add_option("--out-dir", "the directory a previous `xres suite paper` wrote", "");
    if (!cli.parse_or_exit(argc - 1, argv + 1)) return 0;
    const std::string out_dir = cli.str("--out-dir");
    if (out_dir.empty()) CliParser::usage_error("--out-dir is required");
    return study::verify_suite(out_dir);
  }
  std::fprintf(stderr, "unknown suite mode: %s\n\n%s", mode.c_str(), usage);
  return 1;
}

int cmd_advise(int argc, const char* const* argv) {
  CliParser cli{"xres advise — recommend a resilience technique"};
  cli.add_option("--type", "application type (Table I)", "C64");
  cli.add_option("--system-share", "fraction of the machine used", "0.25");
  cli.add_option("--baseline-hours", "delay-free execution time", "24");
  cli.add_option("--mtbf-years", "per-node MTBF", "10");
  cli.add_option("--log-level", "override XRES_LOG: trace|debug|info|warn|error|off",
                 "");
  if (!cli.parse_or_exit(argc, argv)) return 0;
  const std::string level = cli.str("--log-level");
  if (!level.empty()) Logger::global().set_level(parse_log_level(level));

  const MachineSpec machine = MachineSpec::exascale();
  ResilienceConfig resilience;
  resilience.node_mtbf = Duration::years(cli.real("--mtbf-years"));
  const auto nodes = static_cast<std::uint32_t>(
      cli.real("--system-share") * machine.node_count);
  const AppSpec app = AppSpec::from_baseline(app_type_by_name(cli.str("--type")),
                                             std::max(1U, nodes),
                                             Duration::hours(cli.real("--baseline-hours")));

  Table table{{"technique", "predicted efficiency", "expected wall time"}};
  for (TechniqueKind kind : evaluated_techniques()) {
    const ExecutionPlan plan = make_plan(kind, app, machine, resilience);
    const double eff = predict_efficiency(plan, resilience);
    table.add_row({to_string(kind), fmt_double(eff, 3),
                   plan.feasible ? to_string(predict_wall_time(plan, resilience))
                                 : "infeasible"});
  }
  std::printf("application: %s\n%s", app.describe().c_str(), table.to_text().c_str());

  const ResilienceSelector selector{machine, resilience};
  const auto selection = selector.select(app);
  std::printf("recommendation: %s (predicted %.3f)\n", to_string(selection.kind),
              selection.predicted_efficiency);
  return 0;
}

int cmd_trace(int argc, const char* const* argv) {
  CliParser cli{"xres trace — generate a failure trace CSV"};
  cli.add_option("--mtbf-years", "per-node MTBF", "10");
  cli.add_option("--system-share", "fraction of the machine busy", "1.0");
  cli.add_option("--days", "horizon in days", "7");
  cli.add_option("--weibull-shape", "0 = exponential, else Weibull shape", "0");
  cli.add_option("--seed", "RNG seed", "1");
  cli.add_option("--out", "output path (empty: stdout)", "");
  cli.add_option("--log-level", "override XRES_LOG: trace|debug|info|warn|error|off",
                 "");
  if (!cli.parse_or_exit(argc, argv)) return 0;
  const std::string level = cli.str("--log-level");
  if (!level.empty()) Logger::global().set_level(parse_log_level(level));

  const Rate rate = Rate::one_per(Duration::years(cli.real("--mtbf-years"))) *
                    (cli.real("--system-share") * 120000.0);
  const double shape = cli.real("--weibull-shape");
  const FailureDistribution dist = shape > 0.0 ? FailureDistribution::weibull(shape)
                                               : FailureDistribution::exponential();
  Pcg32 rng{static_cast<std::uint64_t>(cli.integer("--seed"))};
  const SeverityModel severity = SeverityModel::bluegene_default();
  const FailureTrace trace = FailureTrace::generate(
      rate, Duration::days(cli.real("--days")), severity, dist, rng);

  const std::string out = cli.str("--out");
  if (out.empty()) {
    std::fputs(trace.to_csv().c_str(), stdout);
  } else {
    trace.save(out);
    std::printf("%zu failures written to %s\n", trace.size(), out.c_str());
  }
  return 0;
}

int cmd_journal(int argc, const char* const* argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 || std::strcmp(argv[1], "-h") == 0) {
    std::fputs("usage: xres journal <path>\n\n"
               "inspect a write-ahead trial journal (docs/ROBUSTNESS.md): print the\n"
               "owning study, per-batch record counts, and any corruption observed\n",
               argc < 2 ? stderr : stdout);
    return argc < 2 ? CliParser::kExitUsage : 0;
  }
  const std::string path = argv[1];
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    // Missing / unreadable input is a usage problem (exit 2): one clean
    // line naming the path, never an exception or stack trace.
    std::fprintf(stderr, "error: cannot read journal %s\n", path.c_str());
    return CliParser::kExitUsage;
  }
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(std::move(line));

  bool saw_meta = false;
  std::size_t corrupt = 0;
  std::size_t quarantined = 0;
  bool torn_tail = false;
  std::map<std::string, std::size_t> batches;  // sorted for stable output
  std::map<std::string, std::size_t> reasons;  // quarantine reason -> count
  double wall_total = 0.0;
  std::size_t wall_records = 0;
  std::size_t retried_records = 0;
  std::size_t extra_attempts = 0;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    std::string record_json;
    try {
      if (!recovery::unframe_journal_line(lines[li], record_json)) {
        throw recovery::JsonParseError{"bad frame"};
      }
      const recovery::JsonValue record = recovery::parse_json(record_json);
      if (record.find("journal") != nullptr) {
        std::printf("journal:   %s (format v%llu)\n", record.at("journal").as_string().c_str(),
                    static_cast<unsigned long long>(record.at("v").as_u64()));
        std::printf("study:     %s\n", record.at("study").as_string().c_str());
        std::printf("root seed: %llu\n",
                    static_cast<unsigned long long>(record.at("root_seed").as_u64()));
        saw_meta = true;
        continue;
      }
      batches[record.at("b").as_string()] += 1;
      const recovery::JsonValue& payload = record.at("p");
      const recovery::JsonValue* q = payload.find("quarantined");
      if (q != nullptr && q->as_bool()) {
        ++quarantined;
        const recovery::JsonValue* reason = payload.find("reason");
        reasons[reason != nullptr ? reason->as_string() : "(unrecorded)"] += 1;
      }
      // Optional per-trial telemetry ("w" wall seconds, "a" attempts) —
      // journals written before these fields existed simply lack them.
      if (const recovery::JsonValue* w = payload.find("w"); w != nullptr) {
        wall_total += w->as_double();
        ++wall_records;
      }
      if (const recovery::JsonValue* a = payload.find("a"); a != nullptr) {
        const std::uint64_t attempts = a->as_u64();
        if (attempts > 1) {
          ++retried_records;
          extra_attempts += attempts - 1;
        }
      }
    } catch (const recovery::JsonParseError&) {
      if (li + 1 == lines.size()) {
        torn_tail = true;  // the usual SIGKILL artifact — dropped on resume
      } else {
        ++corrupt;
      }
    }
  }
  if (!saw_meta) {
    std::fprintf(stderr, "error: %s is not an xres trial journal (no readable meta "
                 "record)\n", path.c_str());
    return CliParser::kExitUsage;
  }
  std::size_t total = 0;
  for (const auto& [batch, count] : batches) {
    std::printf("batch %-24s %zu record(s)\n", ("'" + batch + "':").c_str(), count);
    total += count;
  }
  std::printf("total:     %zu record(s)", total);
  if (quarantined != 0) std::printf(", %zu quarantined", quarantined);
  if (corrupt != 0) std::printf(", %zu corrupt (skipped on resume)", corrupt);
  if (torn_tail) std::printf(", torn tail (dropped on resume)");
  std::printf("\n");
  if (wall_records != 0) {
    std::printf("wall:      %.3f s across %zu trial(s), mean %.4f s/trial\n",
                wall_total, wall_records, wall_total / static_cast<double>(wall_records));
  }
  if (retried_records != 0) {
    std::printf("retries:   %zu trial(s) needed %zu extra attempt(s)\n",
                retried_records, extra_attempts);
  }
  for (const auto& [reason, count] : reasons) {
    std::printf("quarantine %-24s %zu trial(s)\n", ("'" + reason + "':").c_str(), count);
  }
  return 0;
}

/// Install a fault plan from `--io-faults <spec>` (stripped from \p args so
/// subcommand parsers never see it) and/or the XRES_IO_FAULTS environment
/// variable; the flag wins when both are present. Malformed specs exit 2.
void setup_io_faults(std::vector<char*>& args) {
  std::string spec;
  if (const char* env = std::getenv("XRES_IO_FAULTS"); env != nullptr) spec = env;
  for (std::size_t i = 1; i < args.size();) {
    const std::string_view arg{args[i]};
    if (arg == "--io-faults") {
      if (i + 1 >= args.size()) {
        CliParser::usage_error("--io-faults needs a seed:rate[:kinds] spec");
      }
      spec = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    } else if (arg.rfind("--io-faults=", 0) == 0) {
      spec = std::string{arg.substr(std::strlen("--io-faults="))};
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  if (spec.empty()) return;
  try {
    io::install_faults(io::parse_fault_spec(spec));
  } catch (const CheckError& e) {
    std::string message = e.what();
    if (const std::size_t mark = message.find(" — "); mark != std::string::npos) {
      message = message.substr(mark + std::strlen(" — "));
    }
    CliParser::usage_error(message);
  }
  std::fprintf(stderr, "io-faults: armed with spec '%s'\n", spec.c_str());
}

void print_usage() {
  std::fputs(
      "usage: xres <command> [options]\n\n"
      "commands:\n"
      "  info        library, machine and model summary\n"
      "  list        the registered study catalog (--markdown for docs)\n"
      "  describe    a study's parameter schema and option surface\n"
      "  run         execute a study: xres run <study|--from spec> [--set k=v ...]\n"
      "  sweep       fan a study across a parameter grid: xres sweep <study> --axis k=v1,v2\n"
      "  suite       regenerate/verify every paper artifact (paper | verify)\n"
      "  efficiency  technique-efficiency sweep over application sizes\n"
      "  workload    oversubscribed-machine dropped-applications study\n"
      "  advise      recommend a resilience technique for an application\n"
      "  trace       generate a failure trace CSV\n"
      "  journal     inspect a --journal write-ahead trial journal\n"
      "  log         list recent runs from the ledger (results/ledger.jsonl)\n"
      "  show        one ledger record in full: xres show <run-id>\n"
      "  compare     diff two runs' deterministic identity: xres compare <a> <b>\n\n"
      "global options:\n"
      "  --io-faults seed:rate[:kinds]   deterministic I/O fault injection for\n"
      "              robustness testing (also XRES_IO_FAULTS; docs/ROBUSTNESS.md)\n\n"
      "run 'xres <command> --help' for per-command options\n",
      stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args{argv, argv + argc};
  setup_io_faults(args);
  if (args.size() < 2) {
    print_usage();
    return 1;
  }
  const std::string command = args[1];
  // Shift argv so each subcommand parses its own options.
  const int sub_argc = static_cast<int>(args.size()) - 1;
  const char* const* sub_argv = args.data() + 1;
  try {
    if (command == "info") return cmd_info();
    if (command == "list") return cmd_list(sub_argc, sub_argv);
    if (command == "describe") return cmd_describe(sub_argc, sub_argv);
    if (command == "run") return cmd_run(sub_argc, sub_argv);
    if (command == "sweep") return study::sweep_main(sub_argc, sub_argv);
    if (command == "suite") return cmd_suite(sub_argc, sub_argv);
    if (command == "efficiency") return study::study_main("efficiency", sub_argc, sub_argv);
    if (command == "workload") return study::study_main("workload", sub_argc, sub_argv);
    if (command == "advise") return cmd_advise(sub_argc, sub_argv);
    if (command == "trace") return cmd_trace(sub_argc, sub_argv);
    if (command == "journal") return cmd_journal(sub_argc, sub_argv);
    if (command == "log") return study::cmd_log(sub_argc, sub_argv);
    if (command == "show") return study::cmd_show(sub_argc, sub_argv);
    if (command == "compare") return study::cmd_compare(sub_argc, sub_argv);
    if (command == "--help" || command == "-h" || command == "help") {
      print_usage();
      return 0;
    }
    std::fprintf(stderr, "unknown command: %s\n\n", command.c_str());
    print_usage();
    return 1;
  } catch (const io::IoError& e) {
    // Persistent I/O failure that survived the retry policy. ENOSPC is the
    // documented resumable interruption (exit 75, journals intact); every
    // other errno is an ordinary failure. One line, never a stack trace.
    std::fprintf(stderr, "error: %s\n", e.what());
    if (e.disk_full()) {
      std::fprintf(stderr, "disk full — free space and re-run with --resume\n");
      return recovery::kExitInterrupted;
    }
    return 1;
  } catch (const CheckError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // Exit-code contract (docs/ROBUSTNESS.md): no input, however corrupt,
    // may escape as an uncaught exception.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
