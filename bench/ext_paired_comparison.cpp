// Extension bench: paired technique comparison under common random
// numbers. Every technique replays the SAME failure traces, so per-trace
// deltas (and win rates) isolate the technique effect from failure-
// sampling noise; a Welch test on the deltas quantifies significance with
// far fewer trials than independent sampling needs.

#include <cstdio>
#include <vector>

#include "apps/app_type.hpp"
#include "core/single_app_study.hpp"
#include "failure/severity.hpp"
#include "resilience/planner.hpp"
#include "study/context.hpp"
#include "study/platform_params.hpp"
#include "study/registry.hpp"

namespace {
using namespace xres;

int run(study::StudyContext& ctx) {
  const auto traces = ctx.params().u32("traces");
  const std::uint64_t seed = ctx.seed();
  const TrialExecutor executor = ctx.make_executor();
  study::ObsCollector& collector = ctx.collector();
  study::RecoveryCoordinator& coordinator = ctx.recovery();

  MachineSpec machine = MachineSpec::exascale();
  study::apply_platform_params(machine, ctx.params());
  const auto nodes = static_cast<std::uint32_t>(ctx.params().real("system-share") *
                                                machine.node_count);
  const AppSpec app{app_type_by_name(ctx.params().str("type")), nodes, 1440};
  const ResilienceConfig resilience;
  const SeverityModel severity{resilience.severity_weights};

  const std::vector<TechniqueKind> kinds{TechniqueKind::kCheckpointRestart,
                                         TechniqueKind::kMultilevel,
                                         TechniqueKind::kParallelRecovery};
  std::vector<ExecutionPlan> plans;
  for (TechniqueKind kind : kinds) plans.push_back(make_plan(kind, app, machine, resilience));

  std::printf("Extension: paired comparison on %u shared failure traces\n", traces);
  std::printf("application %s, MTBF %s\n\n", app.describe().c_str(),
              to_string(resilience.node_mtbf).c_str());

  // Trace generation stays serial (it is cheap and sequentially seeded);
  // the replays fan out as one batch over all (trace, technique) pairs.
  std::vector<TrialSpec> specs;
  specs.reserve(static_cast<std::size_t>(traces) * kinds.size());
  for (std::uint32_t i = 0; i < traces; ++i) {
    Pcg32 rng{derive_seed(seed, i)};
    // The trace's rate must cover the highest-rate plan; all three use
    // N_a nodes so the rates coincide.
    const FailureTrace trace =
        FailureTrace::generate(plans[0].failure_rate, Duration::days(60.0), severity,
                               FailureDistribution::exponential(), rng);
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      specs.push_back(TrialSpec{TraceTrialSpec{plans[k], resilience, trace}, {i, k}});
    }
  }
  const std::vector<ExecutionResult> results =
      collector.run_batch(executor, seed, specs, "shared-trace replays", coordinator);

  // Efficiency per technique per trace.
  std::vector<std::vector<double>> eff(kinds.size());
  for (std::uint32_t i = 0; i < traces; ++i) {
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      eff[k].push_back(results[static_cast<std::size_t>(i) * kinds.size() + k].efficiency);
    }
  }

  Table table{{"matchup", "mean delta", "win rate", "Welch t", "significant @95%"}};
  for (std::size_t a = 0; a < kinds.size(); ++a) {
    for (std::size_t b = a + 1; b < kinds.size(); ++b) {
      RunningStats delta;
      int wins = 0;
      RunningStats sa;
      RunningStats sb;
      for (std::uint32_t i = 0; i < traces; ++i) {
        delta.add(eff[a][i] - eff[b][i]);
        if (eff[a][i] > eff[b][i]) ++wins;
        sa.add(eff[a][i]);
        sb.add(eff[b][i]);
      }
      const WelchResult welch = welch_t_test(sa.summary(), sb.summary());
      table.add_row({std::string{to_string(kinds[a])} + " vs " + to_string(kinds[b]),
                     fmt_mean_std(delta.mean(), delta.stddev()),
                     fmt_percent(static_cast<double>(wins) / traces, 0),
                     fmt_double(welch.t, 2), welch.significant_95 ? "yes" : "no"});
    }
  }
  std::printf("%s", table.to_text().c_str());
  if (coordinator.interrupted()) return coordinator.finish();
  collector.finish();
  return coordinator.finish();
}

study::StudyDefinition make() {
  study::StudyDefinition def;
  def.name = "ext_paired_comparison";
  def.group = study::StudyGroup::kExtension;
  def.description =
      "common-random-number technique duel on shared failure traces";
  def.summary = "ext_paired_comparison — common-random-number technique duel";
  def.options.default_seed = 13;
  def.params.integer("traces", "failure traces (pairs) to replay", 30).min(1);
  def.params.text("type", "application type (Table I)", "D64");
  def.params.real("system-share", "fraction of machine used", 0.25)
      .min(0.0001)
      .max(1.0);
  def.run = run;
  return def;
}

const study::Registration registered{make()};

}  // namespace
