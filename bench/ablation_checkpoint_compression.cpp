// Ablation: compressed / incremental checkpoint images. The paper's
// Figure-3 collapse of checkpoint/restart at exascale stems from Eq.-3
// costs proportional to full application memory; this sweep shrinks the
// image (compression or incremental checkpointing, cf. the FTI/diskless
// lines of work the paper cites) and measures how much of the collapse a
// smaller image buys back.

#include <cstdio>
#include <vector>

#include "apps/app_type.hpp"
#include "core/single_app_study.hpp"
#include "study/context.hpp"
#include "study/platform_params.hpp"
#include "study/registry.hpp"

namespace {
using namespace xres;

int run(study::StudyContext& ctx) {
  const auto trials = ctx.params().u32("trials");
  const double mtbf_years = ctx.params().real("mtbf-years");
  const std::uint64_t seed = ctx.seed();
  const TrialExecutor executor = ctx.make_executor();
  study::ObsCollector& collector = ctx.collector();
  study::RecoveryCoordinator& coordinator = ctx.recovery();

  std::printf("Ablation: checkpoint image compression at exascale\n");
  std::printf("application D64 @ 100%% of the machine, MTBF %.1f y, %u trials\n\n",
              mtbf_years, trials);

  Table table{{"image size (xN_m)", "checkpoint-restart", "multilevel",
               "parallel-recovery"}};
  for (double ratio : {1.0, 0.5, 0.25, 0.1}) {
    std::vector<std::string> row{fmt_double(ratio, 2)};
    int column = 0;
    for (TechniqueKind kind : workload_techniques()) {
      SingleAppTrialConfig config;
      study::apply_platform_params(config.machine, ctx.params());
      config.app = AppSpec{app_type_by_name("D64"), 120000, 1440};
      config.technique = kind;
      config.resilience.node_mtbf = Duration::years(mtbf_years);
      config.resilience.checkpoint_compression = ratio;
      std::vector<TrialSpec> specs;
      specs.reserve(trials);
      for (std::uint32_t t = 0; t < trials; ++t) {
        specs.push_back(TrialSpec{config, {static_cast<std::uint64_t>(column), t}});
      }
      RunningStats eff;
      const std::string cell =
          "image x" + fmt_double(ratio, 2) + " " + to_string(kind);
      for (const ExecutionResult& r :
           collector.run_batch(executor, seed, specs, cell, coordinator)) {
        eff.add(r.efficiency);
      }
      row.push_back(fmt_mean_std(eff.mean(), eff.stddev()));
      ++column;
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_text().c_str());
  if (coordinator.interrupted()) return coordinator.finish();
  collector.finish();
  std::printf("(checkpoint/restart regains viability as images shrink; parallel\n"
              " recovery barely moves — its in-memory copies were already cheap)\n");
  return coordinator.finish();
}

study::StudyDefinition make() {
  study::StudyDefinition def;
  def.name = "ablation_checkpoint_compression";
  def.group = study::StudyGroup::kAblation;
  def.description =
      "how much of the exascale checkpoint/restart collapse a smaller image buys back";
  def.summary = "ablation_checkpoint_compression — technique efficiency vs. "
                "checkpoint image size";
  def.options.default_seed = 17;
  def.params.integer("trials", "trials per cell", 40).min(1);
  def.params.real("mtbf-years", "node MTBF", 2.5).min(0.001);
  def.run = run;
  return def;
}

const study::Registration registered{make()};

}  // namespace
