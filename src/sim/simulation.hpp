#pragma once

/// \file simulation.hpp
/// The discrete-event simulation engine: a clock plus an event queue.
///
/// A Simulation owns simulated time. Model components schedule callbacks at
/// absolute or relative times; the engine executes them in deterministic
/// order (time, then insertion order) and advances the clock monotonically.
/// Scheduling into the past is a programming error and throws.

#include <cstdint>
#include <string>

#include "sim/event_queue.hpp"
#include "util/units.hpp"

namespace xres {

class Simulation {
 public:
  Simulation() = default;
  /// Flushes the watchdog-poll tally into the process-global perf counters.
  ~Simulation();

  // The engine hands out raw pointers/references to itself; moving it would
  // invalidate model components' back-references.
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedule \p callback at absolute time \p when (>= now()).
  EventId schedule_at(TimePoint when, EventCallback callback);

  /// Schedule \p callback \p delay from now (delay >= 0).
  EventId schedule_after(Duration delay, EventCallback callback);

  /// Cancel a pending event; returns true if it had not yet fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// True if \p id is still pending.
  [[nodiscard]] bool pending(EventId id) const { return queue_.pending(id); }

  /// Execute the next event, advancing the clock to its time.
  /// Returns false when no events remain (clock unchanged).
  bool step();

  /// Run until the event queue drains or request_stop() is called.
  /// \p max_events guards against runaway models (0 = unlimited).
  void run(std::uint64_t max_events = 0);

  /// Execute all events with time <= \p until, then advance the clock to
  /// \p until (even if no event fired exactly there).
  void run_until(TimePoint until);

  /// Direct-execution support (core/trial_engine.hpp): advance the clock to
  /// \p when (>= now()) and credit one executed event, exactly as step()
  /// would for a queued event firing at \p when. The direct trial engine
  /// dispatches its events itself and uses this so events_processed() — and
  /// every metric derived from it — stays byte-identical to the event path.
  /// Inline: this runs once per simulated event on the hot path.
  void advance_direct(TimePoint when) {
    now_ = when;
    ++events_processed_;
  }

  /// Direct-execution support: credit one watchdog poll (telemetry parity
  /// with run()'s every-4096-events poll; the caller invokes deadline_poll()
  /// itself).
  void count_watchdog_poll() { ++watchdog_polls_; }

  /// Ask run()/run_until() to return after the current event completes.
  void request_stop() { stop_requested_ = true; }
  [[nodiscard]] bool stop_requested() const { return stop_requested_; }

  /// Number of pending events.
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t events_processed() const { return events_processed_; }

 private:
  EventQueue queue_;
  TimePoint now_{TimePoint::origin()};
  std::uint64_t events_processed_{0};
  std::uint64_t watchdog_polls_{0};  ///< flushed by the destructor
  bool stop_requested_{false};
};

}  // namespace xres
