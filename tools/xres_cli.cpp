// xres — unified command-line driver for the library's studies.
//
//   xres efficiency --type D64 --mtbf-years 10 --trials 50
//   xres workload  --scheduler Slack --technique selection --patterns 10
//   xres advise    --type C64 --system-share 0.25
//   xres trace     --mtbf-years 10 --days 7 --out failures.csv
//   xres info
//
// Each subcommand accepts --help. The figure benches in bench/ remain the
// canonical paper-reproduction entry points; this tool is the ad-hoc
// exploration surface.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "xres.hpp"

namespace {

using namespace xres;

// Crash-safety flags and a minimal coordinator (docs/ROBUSTNESS.md). The
// CLI links only the library — not the bench harness — so it carries its
// own copy of the wiring; bench/common.cpp has the harness version.
void add_recovery_flags(CliParser& cli) {
  cli.add_option("--journal", "stream completed trials to this write-ahead journal "
                 "(crash-safe; see docs/ROBUSTNESS.md)", "");
  cli.add_flag("--resume", "skip trials already recorded in --journal and reproduce "
               "the uninterrupted output byte for byte");
  cli.add_option("--trial-timeout", "watchdog: seconds of wall time per trial attempt "
                 "before it is aborted (0 = no watchdog)", "0");
  cli.add_option("--trial-retries", "extra same-seed attempts for a failed or "
                 "timed-out trial before it is quarantined", "0");
}

struct CliRecovery {
  std::optional<recovery::ResumeIndex> index;
  std::unique_ptr<recovery::TrialJournal> journal;
  recovery::BatchReport report;
  double timeout{0.0};
  unsigned attempts{1};
  bool any{false};

  CliRecovery(const CliParser& cli, std::string study, std::uint64_t root_seed) {
    const std::string path = cli.str("--journal");
    const bool resume = cli.flag("--resume");
    timeout = cli.real("--trial-timeout");
    const std::int64_t retries = cli.integer("--trial-retries");
    if (resume && path.empty()) {
      CliParser::usage_error("--resume needs --journal <path> (nothing to resume from)");
    }
    if (timeout < 0.0) CliParser::usage_error("--trial-timeout must be >= 0 seconds");
    if (retries < 0 || retries > 100) {
      CliParser::usage_error("--trial-retries must be in [0, 100]");
    }
    attempts = static_cast<unsigned>(retries) + 1;
    any = !path.empty() || timeout > 0.0 || retries > 0;
    if (path.empty()) return;

    recovery::JournalMeta meta;
    meta.study = std::move(study);
    meta.root_seed = root_seed;
    if (resume) {
      index.emplace(recovery::ResumeIndex::load(path, meta));
      std::printf("journal %s: %zu trial(s) to resume\n", path.c_str(), index->size());
    } else {
      // A fresh run replaces a stale journal: appending would let a later
      // --resume resurrect the previous run's records.
      std::remove(path.c_str());
    }
    journal = std::make_unique<recovery::TrialJournal>(path, meta);
    recovery::install_shutdown_handlers();
  }

  [[nodiscard]] recovery::TrialRecoveryOptions options() const {
    recovery::TrialRecoveryOptions options;
    options.journal = journal.get();
    options.resume = index.has_value() ? &*index : nullptr;
    options.trial_timeout_seconds = timeout;
    options.trial_attempts = attempts;
    return options;
  }

  [[nodiscard]] int finish() {
    if (journal != nullptr) journal->flush();
    if (any || report.interrupted) {
      std::printf("recovery: %s\n", report.summary().c_str());
    }
    if (report.interrupted) {
      std::printf("interrupted by signal %d — journal flushed", recovery::shutdown_signal());
      if (journal != nullptr) {
        std::printf("; resume with --journal %s --resume", journal->path().c_str());
      }
      std::printf("\n");
      return recovery::kExitInterrupted;
    }
    return 0;
  }
};

// Shared observability flags (docs/OBSERVABILITY.md). --metrics and
// --trace artifacts are deterministic functions of the seed, byte-identical
// for every --threads value.
void add_log_level_option(CliParser& cli) {
  cli.add_option("--log-level", "override XRES_LOG: trace|debug|info|warn|error|off",
                 "");
}

void apply_log_level_option(const CliParser& cli) {
  const std::string level = cli.str("--log-level");
  if (!level.empty()) Logger::global().set_level(parse_log_level(level));
}

int cmd_info() {
  std::printf("xres %s — exascale resilience simulation library\n", kVersionString);
  std::printf("machine: %s\n", MachineSpec::exascale().describe().c_str());
  std::printf("application types:");
  for (const AppType& t : all_app_types()) std::printf(" %s", t.name.c_str());
  std::printf("\ntechniques:");
  for (TechniqueKind kind : evaluated_techniques()) std::printf(" %s", to_string(kind));
  std::printf(" %s", to_string(TechniqueKind::kSemiBlockingCheckpoint));
  std::printf("\nschedulers:");
  for (SchedulerKind kind : extended_schedulers()) std::printf(" %s", to_string(kind));
  std::printf("\nsee README.md and bench/ for the paper-reproduction harnesses\n");
  return 0;
}

int cmd_efficiency(int argc, const char* const* argv) {
  CliParser cli{"xres efficiency — technique-efficiency sweep over application sizes"};
  cli.add_option("--type", "application type (Table I)", "C64");
  cli.add_option("--mtbf-years", "per-node MTBF", "10");
  cli.add_option("--trials", "trials per cell", "50");
  cli.add_option("--baseline-hours", "delay-free execution time", "24");
  cli.add_option("--seed", "root RNG seed", "20170529");
  add_threads_option(cli);
  cli.add_flag("--chart", "render ASCII bars");
  cli.add_option("--metrics", "write deterministic study metrics JSON here", "");
  cli.add_option("--trace", "write a Chrome trace-event JSON (Perfetto) here", "");
  add_recovery_flags(cli);
  add_log_level_option(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  apply_log_level_option(cli);
  const std::string metrics_path = cli.str("--metrics");
  const std::string trace_path = cli.str("--trace");

  EfficiencyStudyConfig config;
  config.app_type = app_type_by_name(cli.str("--type"));
  config.resilience.node_mtbf = Duration::years(cli.real("--mtbf-years"));
  config.baseline = Duration::hours(cli.real("--baseline-hours"));
  config.trials = static_cast<std::uint32_t>(cli.integer("--trials"));
  config.seed = static_cast<std::uint64_t>(cli.integer("--seed"));
  config.threads = parse_threads_option(cli);
  config.collect_metrics = !metrics_path.empty();
  config.collect_trace = !trace_path.empty();

  CliRecovery rec{cli, "xres efficiency", config.seed};
  config.recovery = rec.options();

  const EfficiencyStudyResult result = run_efficiency_study(config);
  rec.report.merge(result.recovery_report);
  if (rec.report.interrupted) return rec.finish();  // withhold partial output
  std::printf("%s", result.to_table().to_text().c_str());
  if (!metrics_path.empty()) {
    std::printf("\nInstrumented breakdown (per technique, whole study):\n%s",
                result.to_metrics_table().to_text().c_str());
    result.metrics->write_json(metrics_path);
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    result.trace.write(trace_path);
    std::printf("trace written to %s (%zu tracks, %zu events; open in Perfetto)\n",
                trace_path.c_str(), result.trace.track_count(),
                result.trace.event_count());
  }
  if (cli.flag("--chart")) {
    std::vector<std::string> series;
    for (TechniqueKind kind : config.techniques) series.emplace_back(to_string(kind));
    BarChart chart{series};
    for (std::size_t si = 0; si < config.size_fractions.size(); ++si) {
      std::vector<double> values;
      for (const Summary& s : result.efficiency[si]) values.push_back(s.mean);
      chart.add_category(fmt_percent(config.size_fractions[si], 0), values);
    }
    std::printf("\n%s", chart.render(50, 1.0).c_str());
  }
  return rec.finish();
}

int cmd_workload(int argc, const char* const* argv) {
  CliParser cli{"xres workload — oversubscribed-machine study"};
  cli.add_option("--scheduler", "FCFS | Random | Slack | FirstFit | SJF", "Slack");
  cli.add_option("--technique", "technique name, 'selection' or 'none'",
                 "parallel-recovery");
  cli.add_option("--patterns", "arrival patterns to average", "10");
  cli.add_option("--mtbf-years", "per-node MTBF", "10");
  cli.add_option("--bias",
                 "unbiased | high-memory | high-communication | large-apps",
                 "unbiased");
  cli.add_option("--seed", "root RNG seed", "20170530");
  add_threads_option(cli);
  cli.add_option("--metrics", "write deterministic study metrics JSON here", "");
  add_recovery_flags(cli);
  add_log_level_option(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  apply_log_level_option(cli);
  const std::string metrics_path = cli.str("--metrics");

  WorkloadStudyConfig study;
  study.patterns = static_cast<std::uint32_t>(cli.integer("--patterns"));
  study.seed = static_cast<std::uint64_t>(cli.integer("--seed"));
  study.threads = parse_threads_option(cli);
  study.collect_metrics = !metrics_path.empty();
  study.resilience.node_mtbf = Duration::years(cli.real("--mtbf-years"));
  const std::string bias = cli.str("--bias");
  for (WorkloadBias b : {WorkloadBias::kUnbiased, WorkloadBias::kHighMemory,
                         WorkloadBias::kHighCommunication, WorkloadBias::kLargeApps}) {
    if (bias == to_string(b)) study.workload.bias = b;
  }

  WorkloadCombo combo;
  combo.scheduler = scheduler_from_string(cli.str("--scheduler"));
  const std::string technique = cli.str("--technique");
  combo.policy = technique == "selection" ? TechniquePolicy::selection()
                 : technique == "none"    ? TechniquePolicy::ideal_baseline()
                 : TechniquePolicy::fixed_technique(technique_from_string(technique));

  CliRecovery rec{cli, "xres workload", study.seed};
  study.recovery = rec.options();

  recovery::BatchReport report;
  const auto results = run_workload_study(
      study, {combo},
      [](std::size_t done, std::size_t total) {
        std::fprintf(stderr, "\r  pattern %zu/%zu", done, total);
        if (done == total) std::fprintf(stderr, "\n");
      },
      &report);
  rec.report.merge(report);
  if (rec.report.interrupted) return rec.finish();  // withhold partial output
  std::printf("%s", workload_results_table(results).to_text().c_str());
  if (!metrics_path.empty()) {
    obs::MetricSet merged;
    for (const WorkloadComboResult& r : results) {
      if (r.metrics.has_value()) merged.merge(*r.metrics);
    }
    std::printf("\nInstrumented breakdown:\n%s", merged.to_table().to_text().c_str());
    merged.write_json(metrics_path);
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  return rec.finish();
}

int cmd_advise(int argc, const char* const* argv) {
  CliParser cli{"xres advise — recommend a resilience technique"};
  cli.add_option("--type", "application type (Table I)", "C64");
  cli.add_option("--system-share", "fraction of the machine used", "0.25");
  cli.add_option("--baseline-hours", "delay-free execution time", "24");
  cli.add_option("--mtbf-years", "per-node MTBF", "10");
  add_log_level_option(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  apply_log_level_option(cli);

  const MachineSpec machine = MachineSpec::exascale();
  ResilienceConfig resilience;
  resilience.node_mtbf = Duration::years(cli.real("--mtbf-years"));
  const auto nodes = static_cast<std::uint32_t>(
      cli.real("--system-share") * machine.node_count);
  const AppSpec app = AppSpec::from_baseline(app_type_by_name(cli.str("--type")),
                                             std::max(1U, nodes),
                                             Duration::hours(cli.real("--baseline-hours")));

  Table table{{"technique", "predicted efficiency", "expected wall time"}};
  for (TechniqueKind kind : evaluated_techniques()) {
    const ExecutionPlan plan = make_plan(kind, app, machine, resilience);
    const double eff = predict_efficiency(plan, resilience);
    table.add_row({to_string(kind), fmt_double(eff, 3),
                   plan.feasible ? to_string(predict_wall_time(plan, resilience))
                                 : "infeasible"});
  }
  std::printf("application: %s\n%s", app.describe().c_str(), table.to_text().c_str());

  const ResilienceSelector selector{machine, resilience};
  const auto selection = selector.select(app);
  std::printf("recommendation: %s (predicted %.3f)\n", to_string(selection.kind),
              selection.predicted_efficiency);
  return 0;
}

int cmd_trace(int argc, const char* const* argv) {
  CliParser cli{"xres trace — generate a failure trace CSV"};
  cli.add_option("--mtbf-years", "per-node MTBF", "10");
  cli.add_option("--system-share", "fraction of the machine busy", "1.0");
  cli.add_option("--days", "horizon in days", "7");
  cli.add_option("--weibull-shape", "0 = exponential, else Weibull shape", "0");
  cli.add_option("--seed", "RNG seed", "1");
  cli.add_option("--out", "output path (empty: stdout)", "");
  add_log_level_option(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  apply_log_level_option(cli);

  const Rate rate = Rate::one_per(Duration::years(cli.real("--mtbf-years"))) *
                    (cli.real("--system-share") * 120000.0);
  const double shape = cli.real("--weibull-shape");
  const FailureDistribution dist = shape > 0.0 ? FailureDistribution::weibull(shape)
                                               : FailureDistribution::exponential();
  Pcg32 rng{static_cast<std::uint64_t>(cli.integer("--seed"))};
  const SeverityModel severity = SeverityModel::bluegene_default();
  const FailureTrace trace = FailureTrace::generate(
      rate, Duration::days(cli.real("--days")), severity, dist, rng);

  const std::string out = cli.str("--out");
  if (out.empty()) {
    std::fputs(trace.to_csv().c_str(), stdout);
  } else {
    trace.save(out);
    std::printf("%zu failures written to %s\n", trace.size(), out.c_str());
  }
  return 0;
}

int cmd_journal(int argc, const char* const* argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 || std::strcmp(argv[1], "-h") == 0) {
    std::fputs("usage: xres journal <path>\n\n"
               "inspect a write-ahead trial journal (docs/ROBUSTNESS.md): print the\n"
               "owning study, per-batch record counts, and any corruption observed\n",
               argc < 2 ? stderr : stdout);
    return argc < 2 ? 1 : 0;
  }
  const std::string path = argv[1];
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 1;
  }
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(std::move(line));

  bool saw_meta = false;
  std::size_t corrupt = 0;
  std::size_t quarantined = 0;
  bool torn_tail = false;
  std::map<std::string, std::size_t> batches;  // sorted for stable output
  for (std::size_t li = 0; li < lines.size(); ++li) {
    std::string record_json;
    try {
      if (!recovery::unframe_journal_line(lines[li], record_json)) {
        throw recovery::JsonParseError{"bad frame"};
      }
      const recovery::JsonValue record = recovery::parse_json(record_json);
      if (record.find("journal") != nullptr) {
        std::printf("journal:   %s (format v%llu)\n", record.at("journal").as_string().c_str(),
                    static_cast<unsigned long long>(record.at("v").as_u64()));
        std::printf("study:     %s\n", record.at("study").as_string().c_str());
        std::printf("root seed: %llu\n",
                    static_cast<unsigned long long>(record.at("root_seed").as_u64()));
        saw_meta = true;
        continue;
      }
      batches[record.at("b").as_string()] += 1;
      const recovery::JsonValue* q = record.at("p").find("quarantined");
      if (q != nullptr && q->as_bool()) ++quarantined;
    } catch (const recovery::JsonParseError&) {
      if (li + 1 == lines.size()) {
        torn_tail = true;  // the usual SIGKILL artifact — dropped on resume
      } else {
        ++corrupt;
      }
    }
  }
  if (!saw_meta) {
    std::fprintf(stderr, "error: %s is not an xres trial journal (no meta record)\n",
                 path.c_str());
    return 1;
  }
  std::size_t total = 0;
  for (const auto& [batch, count] : batches) {
    std::printf("batch %-24s %zu record(s)\n", ("'" + batch + "':").c_str(), count);
    total += count;
  }
  std::printf("total:     %zu record(s)", total);
  if (quarantined != 0) std::printf(", %zu quarantined", quarantined);
  if (corrupt != 0) std::printf(", %zu corrupt (skipped on resume)", corrupt);
  if (torn_tail) std::printf(", torn tail (dropped on resume)");
  std::printf("\n");
  return 0;
}

void print_usage() {
  std::fputs(
      "usage: xres <command> [options]\n\n"
      "commands:\n"
      "  info        library, machine and model summary\n"
      "  efficiency  technique-efficiency sweep over application sizes\n"
      "  workload    oversubscribed-machine dropped-applications study\n"
      "  advise      recommend a resilience technique for an application\n"
      "  trace       generate a failure trace CSV\n"
      "  journal     inspect a --journal write-ahead trial journal\n\n"
      "run 'xres <command> --help' for per-command options\n",
      stdout);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 1;
  }
  const std::string command = argv[1];
  // Shift argv so each subcommand parses its own options.
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  try {
    if (command == "info") return cmd_info();
    if (command == "efficiency") return cmd_efficiency(sub_argc, sub_argv);
    if (command == "workload") return cmd_workload(sub_argc, sub_argv);
    if (command == "advise") return cmd_advise(sub_argc, sub_argv);
    if (command == "trace") return cmd_trace(sub_argc, sub_argv);
    if (command == "journal") return cmd_journal(sub_argc, sub_argv);
    if (command == "--help" || command == "-h" || command == "help") {
      print_usage();
      return 0;
    }
    std::fprintf(stderr, "unknown command: %s\n\n", command.c_str());
    print_usage();
    return 1;
  } catch (const CheckError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
