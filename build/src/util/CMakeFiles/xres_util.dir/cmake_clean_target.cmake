file(REMOVE_RECURSE
  "libxres_util.a"
)
