// Tests for the pluggable platform layer: Eq. 3/5/6 boundary cases pinned
// to hand-computed constants, flat/fattree convergence and divergence, the
// queued PFS device, topology-aware allocation, and the `--platform.*`
// parameter materialization/validation path.

#include <gtest/gtest.h>

#include "platform/allocator.hpp"
#include "platform/fattree.hpp"
#include "platform/platform_model.hpp"
#include "platform/spec.hpp"
#include "platform/transfer.hpp"
#include "sim/pfs_device.hpp"
#include "study/platform_params.hpp"
#include "util/check.hpp"

namespace xres {
namespace {

Bandwidth bps(double v) { return Bandwidth::bytes_per_second(v); }

/// A machine with clean round numbers: N_m = 100 B, B_M = 20 B/s,
/// B_N = 10 B/s, N_S = 4, L = 0.
MachineSpec tiny_machine(double latency_us = 0.0) {
  MachineSpec machine = MachineSpec::testbed(64);
  machine.node.memory = DataSize::bytes(100.0);
  machine.node.memory_bandwidth = bps(20.0);
  machine.network.bandwidth = bps(10.0);
  machine.network.switch_connections = 4;
  machine.network.latency = Duration::microseconds(latency_us);
  return machine;
}

// --- Eq. 3/5/6 boundary cases, hand-computed ------------------------------

TEST(TransferEquations, Eq3OneNodeApplication) {
  // T = (N_m / B_N) · (N_a / N_S) = (100/10) · (1/4) = 2.5 s.
  const MachineSpec m = tiny_machine();
  EXPECT_DOUBLE_EQ(
      pfs_checkpoint_time(m.node.memory, 1, m.network).to_seconds(), 2.5);
}

TEST(TransferEquations, Eq3AppAtAndBelowChannelCount) {
  const MachineSpec m = tiny_machine();
  // N_a == N_S: the contention factor is exactly 1 → N_m / B_N = 10 s.
  EXPECT_DOUBLE_EQ(
      pfs_checkpoint_time(m.node.memory, 4, m.network).to_seconds(), 10.0);
  // N_a = 2 < N_S: half the full-leaf time.
  EXPECT_DOUBLE_EQ(
      pfs_checkpoint_time(m.node.memory, 2, m.network).to_seconds(), 5.0);
  // N_a = 8 = 2 N_S: contention doubles the time.
  EXPECT_DOUBLE_EQ(
      pfs_checkpoint_time(m.node.memory, 8, m.network).to_seconds(), 20.0);
}

TEST(TransferEquations, Eq5LocalMemory) {
  // T = N_m / B_M = 100 / 20 = 5 s, independent of N_a.
  const MachineSpec m = tiny_machine();
  EXPECT_DOUBLE_EQ(
      local_memory_checkpoint_time(m.node.memory, m.node).to_seconds(), 5.0);
}

TEST(TransferEquations, Eq6PartnerCopyZeroLatency) {
  // T = 2 (T_L1 + L + N_m / B_M) with L = 0: 2 (5 + 0 + 5) = 20 s.
  const MachineSpec m = tiny_machine();
  EXPECT_DOUBLE_EQ(
      partner_copy_checkpoint_time(m.node.memory, m.node, m.network).to_seconds(),
      20.0);
}

TEST(TransferEquations, Eq6PartnerCopyWithLatency) {
  // L = 0.5 s → 2 (5 + 0.5 + 5) = 21 s.
  const MachineSpec m = tiny_machine(0.5 * 1e6);
  EXPECT_DOUBLE_EQ(
      partner_copy_checkpoint_time(m.node.memory, m.node, m.network).to_seconds(),
      21.0);
}

// --- FlatPlatformModel: bit-identical delegation --------------------------

TEST(FlatPlatformModel, DelegatesToClosedForms) {
  const MachineSpec m = tiny_machine(0.5 * 1e6);
  const FlatPlatformModel model{m};
  for (std::uint32_t nodes : {1U, 2U, 4U, 8U, 64U}) {
    EXPECT_EQ(model.pfs_transfer_time(m.node.memory, nodes).to_seconds(),
              pfs_checkpoint_time(m.node.memory, nodes, m.network).to_seconds());
  }
  EXPECT_EQ(model.local_memory_time(m.node.memory).to_seconds(),
            local_memory_checkpoint_time(m.node.memory, m.node).to_seconds());
  EXPECT_EQ(model.partner_copy_time(m.node.memory).to_seconds(),
            partner_copy_checkpoint_time(m.node.memory, m.node, m.network)
                .to_seconds());
  // Effective bandwidth is B_N · N_S regardless of application size.
  EXPECT_DOUBLE_EQ(model.pfs_effective_bandwidth(1).to_bytes_per_second(), 40.0);
  EXPECT_DOUBLE_EQ(model.pfs_effective_bandwidth(64).to_bytes_per_second(), 40.0);
  EXPECT_DOUBLE_EQ(model.pfs_rate_cap_for_range(17, 3).to_bytes_per_second(), 40.0);
}

TEST(PlatformFactory, SelectsModelByKind) {
  MachineSpec m = tiny_machine();
  EXPECT_STREQ(make_platform_model(m)->name(), "flat");
  m.platform.model = PlatformModelKind::kFattree;
  EXPECT_STREQ(make_platform_model(m)->name(), "fattree");
}

TEST(PlatformSpec, DescribeSuffixOnlyWhenNonFlat) {
  // The flat default must leave MachineSpec::describe() byte-identical to
  // the pre-topology rendering (artifact compatibility).
  MachineSpec m = MachineSpec::exascale();
  const std::string flat = m.describe();
  EXPECT_EQ(flat.find("platform="), std::string::npos);
  m.platform.model = PlatformModelKind::kFattree;
  EXPECT_NE(m.describe().find("platform=fattree"), std::string::npos);
}

// --- Fat tree: convergence and divergence vs. Eq. 3 -----------------------

TEST(FatTree, ConvergesToFlatWhenUncongested) {
  // Contiguous N_a ≥ N_S: injection ≥ N_S · B_N, the device aggregate
  // binds, and the fat-tree time equals Eq. 3 within 1% (here exactly).
  MachineSpec m = MachineSpec::exascale();
  m.platform.model = PlatformModelKind::kFattree;
  const FatTreePlatformModel model{m};
  for (std::uint32_t nodes : {12U, 24U, 1200U, 60000U}) {
    const double flat =
        pfs_checkpoint_time(m.node.memory, nodes, m.network).to_seconds();
    const double tree = model.pfs_transfer_time(m.node.memory, nodes).to_seconds();
    EXPECT_NEAR(tree, flat, flat * 0.01) << nodes << " nodes";
  }
}

TEST(FatTree, SmallAppIsInjectionBound) {
  // N_a < N_S: the application's own links bind before the device, so it
  // is N_S / N_a slower than Eq. 3 — the emergent divergence.
  MachineSpec m = MachineSpec::exascale();
  m.platform.model = PlatformModelKind::kFattree;
  const FatTreePlatformModel model{m};
  const double flat =
      pfs_checkpoint_time(m.node.memory, 3, m.network).to_seconds();
  const double tree = model.pfs_transfer_time(m.node.memory, 3).to_seconds();
  EXPECT_NEAR(tree / flat, 12.0 / 3.0, 1e-9);
}

TEST(FatTree, TaperCapsUpperLevels) {
  // 64 nodes, radix 4, taper 0.5, N_S = 4, B_N = 10. Uplink levels cover
  // subtrees strictly smaller than the machine (the root's hop to the PFS
  // is the device): level 1 uplink 4·10·1 = 40, level 2 = 20.
  // A contiguous 16-node app fills one level-2 subtree: injection =
  // min(16·10, 4·40, 1·20) = 20 B/s.
  MachineSpec m = tiny_machine();
  m.platform.model = PlatformModelKind::kFattree;
  m.platform.fattree.leaf_radix = 4;
  m.platform.fattree.taper = 0.5;
  const FatTreeTopology topo{64, m.network, m.platform.fattree};
  EXPECT_EQ(topo.levels(), 2U);
  EXPECT_DOUBLE_EQ(topo.uplink(1).to_bytes_per_second(), 40.0);
  EXPECT_DOUBLE_EQ(topo.uplink(2).to_bytes_per_second(), 20.0);
  EXPECT_EQ(topo.spanned_subtrees(1, 0, 16), 4U);
  EXPECT_EQ(topo.spanned_subtrees(2, 0, 16), 1U);
  EXPECT_DOUBLE_EQ(topo.injection_bandwidth(0, 16).to_bytes_per_second(), 20.0);
}

TEST(FatTree, PlacementChangesRateCap) {
  // Same machine as above: an 8-node app packed inside one level-2 subtree
  // drains through that subtree's 20 B/s uplink; straddling two level-2
  // subtrees doubles the available level-2 capacity to 40.
  MachineSpec m = tiny_machine();
  m.platform.model = PlatformModelKind::kFattree;
  m.platform.fattree.leaf_radix = 4;
  m.platform.fattree.taper = 0.5;
  const FatTreeTopology topo{64, m.network, m.platform.fattree};
  EXPECT_DOUBLE_EQ(topo.injection_bandwidth(0, 8).to_bytes_per_second(), 20.0);
  EXPECT_DOUBLE_EQ(topo.injection_bandwidth(12, 8).to_bytes_per_second(), 40.0);
}

// --- Queued PFS device ----------------------------------------------------

TEST(PfsDevice, FifoAdmissionAndFairShare) {
  // 2 channels × 10 B/s. Three 100-byte transfers, each rate-capped at 10:
  // A and B are admitted (10 B/s each), C waits. A and B complete at 10 s;
  // C then runs alone at its 10 B/s cap and completes at 20 s.
  Simulation sim;
  PfsDevice device{sim, 2, bps(10.0)};
  std::vector<double> done(3, -1.0);
  for (int i = 0; i < 3; ++i) {
    device.begin_transfer(DataSize::bytes(100.0), bps(10.0), Duration::seconds(10.0),
                          [&done, i, &sim] { done[i] = sim.now().to_seconds(); });
  }
  EXPECT_EQ(device.in_service(), 2U);
  EXPECT_EQ(device.queued(), 1U);
  sim.run();
  EXPECT_NEAR(done[0], 10.0, 1e-6);
  EXPECT_NEAR(done[1], 10.0, 1e-6);
  EXPECT_NEAR(done[2], 20.0, 1e-6);
  EXPECT_EQ(device.completed_transfers(), 3U);
  // Divergence accounting: 10 + 10 + 20 measured vs. 3 × 10 nominal.
  EXPECT_NEAR(device.measured_seconds(), 40.0, 1e-6);
  EXPECT_NEAR(device.nominal_seconds(), 30.0, 1e-6);
}

TEST(PfsDevice, UncappedTransfersShareAggregate) {
  // 2 channels × 10 B/s = 20 aggregate; two uncapped transfers run at 10
  // each, and the survivor speeds to 20 when the first completes.
  Simulation sim;
  PfsDevice device{sim, 2, bps(10.0)};
  double small_done = -1.0;
  double big_done = -1.0;
  device.begin_transfer(DataSize::bytes(300.0), bps(1e9), Duration::seconds(1.0),
                        [&] { big_done = sim.now().to_seconds(); });
  device.begin_transfer(DataSize::bytes(100.0), bps(1e9), Duration::seconds(1.0),
                        [&] { small_done = sim.now().to_seconds(); });
  sim.run();
  // Small: 100 B at 10 B/s → 10 s. Big: 100 B by t=10, then 200 B at 20.
  EXPECT_NEAR(small_done, 10.0, 1e-6);
  EXPECT_NEAR(big_done, 20.0, 1e-6);
}

TEST(PfsDevice, CancelQueuedAndActive) {
  Simulation sim;
  PfsDevice device{sim, 1, bps(10.0)};
  bool active_done = false;
  bool queued_done = false;
  double survivor_done = -1.0;
  const auto active_id = device.begin_transfer(
      DataSize::bytes(100.0), bps(10.0), Duration::seconds(10.0),
      [&] { active_done = true; });
  const auto survivor_id = device.begin_transfer(
      DataSize::bytes(100.0), bps(10.0), Duration::seconds(10.0),
      [&] { survivor_done = sim.now().to_seconds(); });
  const auto queued_id = device.begin_transfer(
      DataSize::bytes(100.0), bps(10.0), Duration::seconds(10.0),
      [&] { queued_done = true; });
  (void)survivor_id;
  EXPECT_TRUE(device.cancel(queued_id));
  EXPECT_TRUE(device.cancel(active_id));
  EXPECT_FALSE(device.cancel(active_id));  // already cancelled
  sim.run();
  EXPECT_FALSE(active_done);
  EXPECT_FALSE(queued_done);
  // The survivor was admitted when the active transfer was cancelled and
  // ran the full 100 bytes at 10 B/s from t = 0.
  EXPECT_NEAR(survivor_done, 10.0, 1e-6);
  EXPECT_EQ(device.completed_transfers(), 1U);
}

// --- Topology-aware allocation --------------------------------------------

TEST(NodeAllocator, GroupedAllocationPrefersFewestGroups) {
  NodeAllocator alloc{36};
  ASSERT_TRUE(alloc.allocate(10).has_value());  // [0, 10)
  // Plain first fit would return [10, 14), which straddles leaf groups
  // [0,12) and [12,24); the grouped allocator aligns to the boundary.
  const auto range = alloc.allocate_grouped(4, 12);
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->first, 12U);
  EXPECT_EQ(range->count, 4U);
  alloc.validate();
}

TEST(NodeAllocator, GroupedFallsBackWhenNoAlignedFit) {
  NodeAllocator alloc{24};
  ASSERT_TRUE(alloc.allocate(2).has_value());   // [0, 2)
  // 22 free nodes in [2, 24): a 20-node request cannot avoid straddling,
  // and only start-of-block fits (20 > 12 remaining after the boundary).
  const auto range = alloc.allocate_grouped(20, 12);
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->first, 2U);
  alloc.validate();
}

TEST(NodeAllocator, GroupSizeOneIsFirstFit) {
  NodeAllocator alloc{16};
  const auto a = alloc.allocate_grouped(5, 1);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->first, 0U);
}

// --- --platform.* materialization -----------------------------------------

TEST(PlatformParams, MaterializeAppliesAndValidates) {
  study::ParamSchema schema;
  study::add_platform_params(schema);
  study::ParamSet params{schema, "test"};
  params.set(study::kPlatformModelKey, "fattree");
  params.set(study::kPlatformRadixKey, "24");
  params.set(study::kPlatformTaperKey, "0.5");
  params.set(study::kPlatformPfsChannelsKey, "6");
  MachineSpec machine = MachineSpec::exascale();
  study::materialize_platform(machine, params);
  EXPECT_EQ(machine.platform.model, PlatformModelKind::kFattree);
  EXPECT_EQ(machine.platform.fattree.leaf_radix, 24U);
  EXPECT_DOUBLE_EQ(machine.platform.fattree.taper, 0.5);
  EXPECT_EQ(machine.platform.fattree.pfs_channels, 6U);
}

TEST(PlatformParams, BadModelNamesOffendingKey) {
  // Spec files and --set bypass per-option CLI validation; materialization
  // must still reject the value and name the key for the exit-2 diagnostic.
  study::ParamSchema schema;
  study::add_platform_params(schema);
  study::ParamSet params{schema, "test"};
  params.set(study::kPlatformModelKey, "hypercube");
  MachineSpec machine = MachineSpec::exascale();
  try {
    study::materialize_platform(machine, params);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string{e.what()}.find("platform.model"), std::string::npos)
        << e.what();
  }
}

TEST(PlatformParams, DefaultsLeaveMachineFlat) {
  study::ParamSchema schema;
  study::add_platform_params(schema);
  const study::ParamSet params{schema, "test"};
  MachineSpec machine = MachineSpec::exascale();
  const std::string before = machine.describe();
  study::materialize_platform(machine, params);
  EXPECT_EQ(machine.platform.model, PlatformModelKind::kFlat);
  EXPECT_EQ(machine.describe(), before);
}

}  // namespace
}  // namespace xres
