# Empty dependencies file for fig2_efficiency_d64.
# This may be replaced when dependencies are built.
