// Unit tests for the strongly typed quantities in util/units.hpp.

#include "util/units.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace xres {
namespace {

TEST(Duration, NamedConstructorsConvertCorrectly) {
  EXPECT_DOUBLE_EQ(Duration::seconds(90.0).to_minutes(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::minutes(2.0).to_seconds(), 120.0);
  EXPECT_DOUBLE_EQ(Duration::hours(1.0).to_seconds(), 3600.0);
  EXPECT_DOUBLE_EQ(Duration::days(2.0).to_hours(), 48.0);
  EXPECT_DOUBLE_EQ(Duration::years(1.0).to_days(), 365.25);
  EXPECT_DOUBLE_EQ(Duration::milliseconds(1500.0).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::microseconds(0.5).to_seconds(), 5e-7);
}

TEST(Duration, ArithmeticBehavesLikeSeconds) {
  const Duration a = Duration::seconds(10.0);
  const Duration b = Duration::seconds(4.0);
  EXPECT_DOUBLE_EQ((a + b).to_seconds(), 14.0);
  EXPECT_DOUBLE_EQ((a - b).to_seconds(), 6.0);
  EXPECT_DOUBLE_EQ((a * 2.5).to_seconds(), 25.0);
  EXPECT_DOUBLE_EQ((2.5 * a).to_seconds(), 25.0);
  EXPECT_DOUBLE_EQ((a / 4.0).to_seconds(), 2.5);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_DOUBLE_EQ((-a).to_seconds(), -10.0);
}

TEST(Duration, ComparisonAndInfinity) {
  EXPECT_LT(Duration::seconds(1.0), Duration::seconds(2.0));
  EXPECT_TRUE(Duration::seconds(5.0).is_finite());
  EXPECT_FALSE(Duration::infinity().is_finite());
  EXPECT_LT(Duration::years(1000.0), Duration::infinity());
  EXPECT_EQ(Duration::zero().to_seconds(), 0.0);
}

TEST(Duration, CompoundAssignment) {
  Duration d = Duration::seconds(1.0);
  d += Duration::seconds(2.0);
  EXPECT_DOUBLE_EQ(d.to_seconds(), 3.0);
  d -= Duration::seconds(1.0);
  EXPECT_DOUBLE_EQ(d.to_seconds(), 2.0);
  d *= 3.0;
  EXPECT_DOUBLE_EQ(d.to_seconds(), 6.0);
  d /= 2.0;
  EXPECT_DOUBLE_EQ(d.to_seconds(), 3.0);
}

TEST(TimePoint, OriginAndOffsets) {
  const TimePoint t0 = TimePoint::origin();
  const TimePoint t1 = t0 + Duration::minutes(3.0);
  EXPECT_DOUBLE_EQ(t1.to_seconds(), 180.0);
  EXPECT_DOUBLE_EQ((t1 - t0).to_seconds(), 180.0);
  EXPECT_DOUBLE_EQ((t1 - Duration::seconds(60.0)).to_seconds(), 120.0);
  EXPECT_LT(t0, t1);
  TimePoint t = t0;
  t += Duration::seconds(5.0);
  EXPECT_DOUBLE_EQ(t.to_seconds(), 5.0);
}

TEST(DataSize, ConversionsAndArithmetic) {
  EXPECT_DOUBLE_EQ(DataSize::gigabytes(32.0).to_bytes(), 32e9);
  EXPECT_DOUBLE_EQ(DataSize::terabytes(1.0).to_gigabytes(), 1000.0);
  EXPECT_DOUBLE_EQ((DataSize::gigabytes(2.0) * 3.0).to_gigabytes(), 6.0);
  EXPECT_DOUBLE_EQ(DataSize::gigabytes(64.0) / DataSize::gigabytes(32.0), 2.0);
}

TEST(Bandwidth, TransferTime) {
  // 600 GB at 600 GB/s takes one second.
  const Duration t =
      transfer_time(DataSize::gigabytes(600.0), Bandwidth::gigabytes_per_second(600.0));
  EXPECT_DOUBLE_EQ(t.to_seconds(), 1.0);
}

TEST(Bandwidth, TransferTimeRejectsZeroBandwidth) {
  EXPECT_THROW(
      transfer_time(DataSize::gigabytes(1.0), Bandwidth::bytes_per_second(0.0)),
      CheckError);
}

TEST(Rate, ConversionsRoundTrip) {
  const Rate r = Rate::per_hour(6.0);
  EXPECT_DOUBLE_EQ(r.per_hour_value(), 6.0);
  EXPECT_DOUBLE_EQ(r.mean_interval().to_minutes(), 10.0);
  EXPECT_DOUBLE_EQ(Rate::one_per(Duration::minutes(10.0)).per_hour_value(), 6.0);
  EXPECT_DOUBLE_EQ(Rate::per_year(365.25).mean_interval().to_days(), 1.0);
}

TEST(Rate, ZeroRateHasInfiniteInterval) {
  EXPECT_FALSE(Rate::zero().mean_interval().is_finite());
  EXPECT_EQ(Rate::one_per(Duration::infinity()), Rate::zero());
}

TEST(Rate, ExpectedEvents) {
  // Eq. 2 shape: 120,000 nodes at a 10-year MTBF fail about every 44 min.
  const Rate system = Rate::one_per(Duration::years(10.0)) * 120000.0;
  EXPECT_NEAR(system.mean_interval().to_minutes(), 43.83, 0.01);
  EXPECT_NEAR(system.expected_events(Duration::days(1.0)), 32.85, 0.01);
}

TEST(Rate, Arithmetic) {
  const Rate a = Rate::per_second(2.0);
  const Rate b = Rate::per_second(3.0);
  EXPECT_DOUBLE_EQ((a + b).per_second_value(), 5.0);
  EXPECT_DOUBLE_EQ((a * 2.0).per_second_value(), 4.0);
  EXPECT_DOUBLE_EQ(b / a, 1.5);
}

TEST(UnitsFormatting, HumanReadable) {
  EXPECT_EQ(to_string(Duration::seconds(90.0)), "1.50 min");
  EXPECT_EQ(to_string(Duration::microseconds(0.5)), "0.50 us");
  EXPECT_EQ(to_string(Duration::hours(30.0)), "1.25 d");
  EXPECT_EQ(to_string(Duration::infinity()), "inf");
  EXPECT_EQ(to_string(DataSize::gigabytes(32.0)), "32.00 GB");
  EXPECT_EQ(to_string(-Duration::seconds(30.0)), "-30.00 s");
}

}  // namespace
}  // namespace xres
