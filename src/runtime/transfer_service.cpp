#include "runtime/transfer_service.hpp"

#include "util/check.hpp"

namespace xres {

TransferService::TransferHandle FixedTransferService::begin(
    Duration nominal, CompletionCallback on_complete) {
  XRES_CHECK(nominal >= Duration::zero(), "transfer duration must be non-negative");
  const EventId id = sim_.schedule_after(nominal, std::move(on_complete));
  return static_cast<TransferHandle>(id);
}

void FixedTransferService::cancel(TransferHandle handle) {
  sim_.cancel(static_cast<EventId>(handle));
}

SharedChannelTransferService::SharedChannelTransferService(SharedChannel& channel,
                                                           Bandwidth per_stream_cap)
    : channel_{channel}, per_stream_cap_bps_{per_stream_cap.to_bytes_per_second()} {
  XRES_CHECK(per_stream_cap_bps_ > 0.0, "per-stream cap must be positive");
}

TransferService::TransferHandle SharedChannelTransferService::begin(
    Duration nominal, CompletionCallback on_complete) {
  XRES_CHECK(nominal >= Duration::zero(), "transfer duration must be non-negative");
  const DataSize size = DataSize::bytes(nominal.to_seconds() * per_stream_cap_bps_);
  return channel_.begin_transfer(size, std::move(on_complete));
}

void SharedChannelTransferService::cancel(TransferHandle handle) {
  channel_.cancel(handle);
}

PfsDeviceTransferService::PfsDeviceTransferService(PfsDevice& device,
                                                   Bandwidth aggregate)
    : device_{device}, aggregate_bps_{aggregate.to_bytes_per_second()} {
  XRES_CHECK(aggregate_bps_ > 0.0, "aggregate device bandwidth must be positive");
}

TransferService::TransferHandle PfsDeviceTransferService::begin(
    Duration nominal, CompletionCallback on_complete) {
  TransferRequest request;
  request.nominal = nominal;
  return begin(request, std::move(on_complete));
}

TransferService::TransferHandle PfsDeviceTransferService::begin(
    const TransferRequest& request, CompletionCallback on_complete) {
  XRES_CHECK(request.nominal >= Duration::zero(),
             "transfer duration must be non-negative");
  DataSize bytes = request.bytes;
  Bandwidth cap = request.rate_cap;
  if (!request.has_topology_info()) {
    // Legacy plan: reconstruct bytes so a lone transfer at the aggregate
    // rate takes exactly its nominal time.
    bytes = DataSize::bytes(request.nominal.to_seconds() * aggregate_bps_);
    cap = Bandwidth::bytes_per_second(aggregate_bps_);
  }
  return device_.begin_transfer(bytes, cap, request.nominal, std::move(on_complete));
}

void PfsDeviceTransferService::cancel(TransferHandle handle) {
  device_.cancel(handle);
}

}  // namespace xres
