#pragma once

/// \file perf.hpp
/// Always-on process-global performance counters. Engine objects accumulate
/// plain (non-atomic) per-object tallies in their hot paths and flush them
/// here exactly once — from a destructor or a batch boundary — so the hot
/// loop costs one integer increment per event and the globals stay
/// TSAN-clean (relaxed atomics touched only at flush points).
///
/// Counter *totals* are deterministic: each is a sum of per-trial values
/// that the determinism contract already fixes, so the same study at
/// `--threads 1` and `--threads 8` reports identical numbers. Wall-clock
/// readings (perf.hpp's consumers pair the counters with timings) are not,
/// which is why they live outside every CRC-checked artifact.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace xres::obs {

/// One coherent reading of every global counter.
struct PerfCounters {
  std::uint64_t events_scheduled{0};
  std::uint64_t events_popped{0};
  std::uint64_t events_cancelled{0};
  std::uint64_t heap_compactions{0};
  std::uint64_t watchdog_polls{0};
  std::uint64_t journal_fsync_batches{0};
  std::uint64_t trials_executed{0};
  std::uint64_t trials_resumed{0};
  std::uint64_t trials_retried{0};
  std::uint64_t trials_quarantined{0};
  /// Trials executed on the direct (batched) engine — a subset of
  /// trials_executed (core/trial_engine.hpp).
  std::uint64_t batched_trials{0};
  /// Study cells answered by the analytic surrogate without simulating
  /// (resilience/surrogate.hpp) / cells where the error bound forced a
  /// fall back to full simulation.
  std::uint64_t surrogate_hits{0};
  std::uint64_t surrogate_fallbacks{0};
};

/// Flush one event-queue's lifetime tallies (called from ~EventQueue).
void perf_add_engine(std::uint64_t scheduled, std::uint64_t popped,
                     std::uint64_t cancelled, std::uint64_t compactions);

/// Flush one simulation's watchdog-poll tally (called from ~Simulation).
void perf_add_watchdog_polls(std::uint64_t polls);

/// Count one journal fsync batch (called at each successful flush_to_disk).
void perf_add_journal_fsync();

/// Flush one executor batch's trial accounting.
void perf_add_trials(std::uint64_t executed, std::uint64_t resumed,
                     std::uint64_t retried, std::uint64_t quarantined);

/// Flush trials executed on the direct (batched) engine.
void perf_add_batched_trials(std::uint64_t count);

/// Count surrogate-answered cells and bound-exceeded fallbacks.
void perf_add_surrogate(std::uint64_t hits, std::uint64_t fallbacks);

/// Current totals since process start.
[[nodiscard]] PerfCounters perf_snapshot();

/// Totals accumulated after \p since (element-wise difference).
[[nodiscard]] PerfCounters perf_delta(const PerfCounters& since);

/// Counters as (name, value) pairs in the fixed emission order used by
/// perf.json and ledger records.
[[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> perf_counter_items(
    const PerfCounters& counters);

/// Peak resident set size of this process in bytes (getrusage), 0 if
/// unavailable. Nondeterministic by nature; never CRC-checked.
[[nodiscard]] std::uint64_t peak_rss_bytes();

}  // namespace xres::obs
