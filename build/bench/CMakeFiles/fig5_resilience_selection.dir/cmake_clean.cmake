file(REMOVE_RECURSE
  "CMakeFiles/fig5_resilience_selection.dir/fig5_resilience_selection.cpp.o"
  "CMakeFiles/fig5_resilience_selection.dir/fig5_resilience_selection.cpp.o.d"
  "fig5_resilience_selection"
  "fig5_resilience_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_resilience_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
