#pragma once

/// \file process.hpp
/// Failure injection processes (paper Section III-E, Eq. 2).
///
/// Two drivers share the severity and inter-arrival models:
///
///  * AppFailureProcess — fixed-rate process for a single application
///    occupying N_a nodes: λ_a = N_a / M_n. Used by the application-scaling
///    studies (Figures 1–3) where one application owns the whole simulation.
///
///  * SystemFailureProcess — machine-wide process whose rate tracks the
///    number of busy nodes: λ_s = N_s(t) / M_n. Each failure strikes a
///    uniformly random busy node; the victim's owning application is
///    resolved through the Machine allocation index. Because exponential
///    gaps are memoryless, the pending arrival is simply re-drawn whenever
///    utilization changes.

#include <cstdint>
#include <functional>

#include "failure/distribution.hpp"
#include "failure/severity.hpp"
#include "platform/machine.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace xres {

/// One injected failure.
struct Failure {
  TimePoint time{};
  SeverityLevel severity{1};
};

/// Fixed-rate per-application failure injector.
class AppFailureProcess {
 public:
  using Callback = std::function<void(const Failure&)>;

  /// \p rate is the application failure rate λ_a = N_a / M_n.
  AppFailureProcess(Simulation& sim, Rate rate, const SeverityModel& severity,
                    FailureDistribution dist, Pcg32 rng, Callback on_failure);

  AppFailureProcess(const AppFailureProcess&) = delete;
  AppFailureProcess& operator=(const AppFailureProcess&) = delete;
  ~AppFailureProcess();

  /// Begin injecting failures from the current simulation time.
  void start();

  /// Stop injecting (cancels the pending arrival).
  void stop();

  [[nodiscard]] Rate rate() const { return rate_; }
  [[nodiscard]] std::uint64_t failures_delivered() const { return delivered_; }

 private:
  void schedule_next();
  void deliver();

  Simulation& sim_;
  Rate rate_;
  const SeverityModel& severity_;
  FailureDistribution dist_;
  Pcg32 rng_;
  Callback on_failure_;
  EventId pending_{};
  bool active_{false};
  std::uint64_t delivered_{0};
};

/// Extension: spatially correlated failures. With probability
/// `probability`, a failure event is a *burst* striking `width` contiguous
/// nodes starting at the sampled victim — modeling cabinet/PSU/switch
/// faults that take out node blocks. Every application intersecting the
/// block receives the failure; burst severities are clamped to at least
/// level 2 (they are physical node losses, never L1-transients).
struct BurstFailureConfig {
  double probability{0.0};  ///< 0 disables bursts (the paper's model)
  std::uint32_t width{64};  ///< nodes per burst

  void validate() const;
};

/// Machine-wide failure injector whose rate follows utilization (Eq. 2).
class SystemFailureProcess {
 public:
  /// Receives the failure and the victim (node + owning application).
  /// Burst events invoke the callback once per affected application.
  using Callback = std::function<void(const Failure&, const Machine::Victim&)>;

  /// \p node_mtbf is M_n, the per-node mean time between failures.
  SystemFailureProcess(Simulation& sim, const Machine& machine, Duration node_mtbf,
                       const SeverityModel& severity, Pcg32 rng, Callback on_failure,
                       BurstFailureConfig bursts = {});

  SystemFailureProcess(const SystemFailureProcess&) = delete;
  SystemFailureProcess& operator=(const SystemFailureProcess&) = delete;
  ~SystemFailureProcess();

  /// Begin injecting failures from the current simulation time.
  void start();

  /// Stop injecting.
  void stop();

  /// Must be called whenever the machine's busy-node count changes
  /// (allocation or release). Re-draws the pending arrival at the new rate;
  /// valid because exponential inter-arrivals are memoryless.
  void notify_utilization_changed();

  /// Current system failure rate λ_s = busy / M_n.
  [[nodiscard]] Rate current_rate() const;

  [[nodiscard]] std::uint64_t failures_delivered() const { return delivered_; }

  /// Burst events injected so far (each may hit several applications).
  [[nodiscard]] std::uint64_t bursts_delivered() const { return bursts_; }

 private:
  void schedule_next();
  void deliver();
  void deliver_burst(const Machine::Victim& origin);

  Simulation& sim_;
  const Machine& machine_;
  Duration node_mtbf_;
  const SeverityModel& severity_;
  Pcg32 rng_;
  Callback on_failure_;
  BurstFailureConfig bursts_config_;
  EventId pending_{};
  bool active_{false};
  std::uint64_t delivered_{0};
  std::uint64_t bursts_{0};
};

}  // namespace xres
