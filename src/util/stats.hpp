#pragma once

/// \file stats.hpp
/// Streaming statistics used to aggregate simulation trials. Every bar in
/// the paper's figures is "mean of N trials with a standard-deviation error
/// bar", so the core abstraction is a numerically stable running accumulator
/// (Welford's algorithm) that never stores the samples.

#include <cstddef>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace xres {

/// Point summary of a sample set.
struct Summary {
  std::size_t count{0};
  double mean{0.0};
  double stddev{0.0};  ///< sample standard deviation (n-1 denominator)
  double min{0.0};
  double max{0.0};
  double ci95_halfwidth{0.0};  ///< normal-approximation 95% CI half-width

  /// Pool another summary into this one (Chan et al. parallel-variance
  /// update, reconstructing each side's M2 from its sample stddev). Pooling
  /// summaries of disjoint sample sets yields the summary of their union up
  /// to floating-point rounding; note the rounding depends on merge order,
  /// so thread-count-invariant studies reduce per-trial results in index
  /// order instead (see core/executor.hpp).
  void merge(const Summary& other);
};

/// Welford online mean/variance accumulator with min/max tracking.
class RunningStats {
 public:
  /// Incorporate one observation.
  void add(double x);

  /// Merge another accumulator (parallel aggregation; Chan et al. update).
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// Mean of observations. Requires at least one observation.
  [[nodiscard]] double mean() const;

  /// Sample variance (n-1). Zero when fewer than two observations.
  [[nodiscard]] double variance() const;

  /// Sample standard deviation.
  [[nodiscard]] double stddev() const;

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Full summary including the 95% confidence half-width.
  [[nodiscard]] Summary summary() const;

 private:
  std::size_t count_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

/// Fixed-width histogram over [lo, hi); observations outside the range are
/// clamped into the first/last bin and counted as underflow/overflow.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count_in_bin(std::size_t i) const;
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] double bin_lower_edge(std::size_t i) const;
  [[nodiscard]] double bin_width() const { return width_; }

  /// Multi-line ASCII rendering, useful in example programs.
  [[nodiscard]] std::string to_text(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_{0};
  std::size_t underflow_{0};
  std::size_t overflow_{0};
};

/// Exact quantile of a sample vector (linear interpolation between order
/// statistics). \p q in [0, 1]. The input is copied and sorted.
[[nodiscard]] double quantile(std::vector<double> samples, double q);

/// Welch's unequal-variance t-test for the difference of two sample means.
/// Used when comparing technique efficiencies or dropped fractions across
/// trial sets: a paper-style "A beats B" claim should clear significance,
/// not just point estimates.
struct WelchResult {
  double t{0.0};                  ///< t statistic (mean_a - mean_b direction)
  double degrees_of_freedom{0.0};  ///< Welch–Satterthwaite approximation
  bool significant_95{false};      ///< |t| above the two-sided 5% critical value
};

/// Requires at least two observations on each side and a positive combined
/// variance (throws CheckError otherwise).
[[nodiscard]] WelchResult welch_t_test(const Summary& a, const Summary& b);

}  // namespace xres
