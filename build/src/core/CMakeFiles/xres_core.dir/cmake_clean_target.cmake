file(REMOVE_RECURSE
  "libxres_core.a"
)
