#include "study/suite.hpp"

#include <dirent.h>
#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <vector>

#include "obs/ledger.hpp"
#include "obs/perf.hpp"
#include "recovery/json_parse.hpp"
#include "recovery/shutdown.hpp"
#include "study/capture.hpp"
#include "study/options.hpp"
#include "study/runlog.hpp"
#include "study/study_main.hpp"
#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/crc32.hpp"
#include "util/io.hpp"

namespace xres::study {

namespace {

void make_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    XRES_CHECK(false, "cannot create directory: " + path);
  }
}

/// Remove temporaries a SIGKILLed run left behind (StdoutCapture's
/// `<path>.tmp`, write_file_atomic's `<path>.tmp.<pid>`) so they never show
/// up as stray diffs between suite output directories.
void remove_stale_temporaries(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  std::vector<std::string> stale;
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.find(".tmp") != std::string::npos) stale.push_back(dir + "/" + name);
  }
  ::closedir(d);
  // Best-effort by policy: a failed unlink here only risks a stray .tmp
  // diff, never a wrong artifact.
  for (const std::string& path : stale) io::remove(path.c_str());
}

[[nodiscard]] bool read_file(const std::string& path, std::string& out) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return in.good() || in.eof();
}

struct ArtifactEntry {
  std::string path;  ///< relative to --out-dir
  std::uint32_t crc{0};
  std::uint64_t bytes{0};
};

struct CellResult {
  const SuiteCell* cell{nullptr};
  std::uint64_t seed{0};
  std::vector<ArtifactEntry> artifacts;
};

/// Checksum `out_dir/rel` into an ArtifactEntry; false when the study did
/// not produce it (it is then omitted from the manifest).
bool checksum_artifact(const std::string& out_dir, const std::string& rel,
                       ArtifactEntry& entry) {
  std::string content;
  if (!read_file(out_dir + "/" + rel, content)) return false;
  entry.path = rel;
  entry.crc = crc32(content);
  entry.bytes = content.size();
  return true;
}

void write_manifest(const std::string& tag, const std::string& out_dir,
                    const std::function<void(obs::JsonWriter&)>& manifest_extras,
                    const std::vector<CellResult>& results) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("suite").value(tag);
  w.key("git").value(build_describe());
  if (manifest_extras) manifest_extras(w);
  w.key("studies").begin_array();
  for (const CellResult& r : results) {
    w.begin_object();
    w.key("study").value(r.cell->def->name);
    // The paper suite's cells *are* its studies; only grid cells carry a
    // distinct label (keeps the historical paper manifest byte-stable).
    if (r.cell->name != r.cell->def->name) w.key("cell").value(r.cell->name);
    w.key("group").value(to_string(r.cell->def->group));
    w.key("seed").value(r.seed);
    w.key("params").begin_object();
    for (const auto& [key, value] : r.cell->params.values()) {
      // Registry-injected platform.* params are echoed only when overridden
      // so historical (pre-topology) manifests stay byte-stable.
      if (key.rfind("platform.", 0) == 0 && r.cell->params.schema() != nullptr) {
        const ParamSpec* spec = r.cell->params.schema()->find(key);
        if (spec != nullptr && spec->default_value == value) continue;
      }
      w.key(key).value(value);
    }
    w.end_object();
    w.key("artifacts").begin_array();
    for (const ArtifactEntry& a : r.artifacts) {
      w.begin_object();
      w.key("path").value(a.path);
      w.key("crc32").value(crc32_hex(a.crc));
      w.key("bytes").value(a.bytes);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  write_file_atomic(out_dir + "/" + kManifestName, w.str() + "\n");
}

/// The wall-clock telemetry sidecar. Deliberately *not* a manifest artifact
/// and never CRC-checked: its contents are nondeterministic by design (the
/// byte-identity contract covers deterministic experiment output only), so
/// byte-compares of suite directories must exclude it. Best-effort by
/// policy: a failed write warns once and the suite still succeeds.
void write_perf_sidecar(const std::string& tag, const std::string& out_dir,
                        double wall_seconds,
                        const std::vector<obs::RunRecord>& cells) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value("xres-perf-v1");
  w.key("suite").value(tag);
  w.key("build").value(build_describe());
  w.key("wall_s").value(wall_seconds);
  w.key("cells").begin_array();
  for (const obs::RunRecord& r : cells) {
    w.begin_object();
    w.key("cell").value(r.cell.empty() ? r.study : r.cell);
    w.key("study").value(r.study);
    w.key("run_id").value(r.id);
    w.key("wall_s").value(r.wall_seconds);
    w.key("trials_per_s").value(r.trials_per_second);
    w.key("events_per_s").value(r.events_per_second);
    w.key("peak_rss_bytes").value(r.peak_rss);
    w.key("counters").begin_object();
    for (const auto& [key, value] : r.counters) w.key(key).value(value);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  const std::string path = out_dir + "/perf.json";
  if (!try_write_file_atomic(path, w.str() + "\n")) {
    io::warn_once_degraded("perf sidecar", "cannot write " + path);
  }
}

}  // namespace

int run_suite_cells(const std::string& tag, const std::vector<SuiteCell>& cells,
                    const SuiteOptions& options,
                    const std::function<void(obs::JsonWriter&)>& manifest_extras) {
  XRES_CHECK(!options.out_dir.empty(), "suite needs --out-dir");
  XRES_CHECK(!cells.empty(), "no cells to run");
  make_dir(options.out_dir);
  make_dir(options.out_dir + "/journals");
  remove_stale_temporaries(options.out_dir);

  // Artifacts must stay deterministic: run status moves to stderr for the
  // whole suite so the captured stdout .txt files carry experiment output
  // only.
  set_status_stream(stderr);
  std::vector<CellResult> results;
  std::vector<obs::RunRecord> cell_perf;
  const obs::PerfCounters perf_before = obs::perf_snapshot();
  const auto suite_start = std::chrono::steady_clock::now();
  int exit_code = 0;

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const SuiteCell& cell = cells[i];
    const StudyDefinition& def = *cell.def;
    std::fprintf(stderr, "[%s %zu/%zu] %s\n", tag.c_str(), i + 1, cells.size(),
                 cell.name.c_str());

    CellResult result;
    result.cell = &cell;

    HarnessOptions harness = default_harness_options(def);
    result.seed = harness.seed;
    harness.run_label = cell.name;
    harness.run_suite = tag;
    if (def.options.threads) harness.threads = options.threads;
    std::vector<std::string> expected{cell.name + ".txt"};
    if (def.options.csv) {
      harness.csv = true;
      harness.csv_path = options.out_dir + "/" + cell.name + ".csv";
      expected.push_back(cell.name + ".csv");
    }
    if (def.options.report) {
      harness.report_path = options.out_dir + "/" + cell.name + ".md";
      expected.push_back(cell.name + ".md");
    }
    if (def.options.obs != StudyOptionsSpec::Obs::kNone) {
      harness.obs.metrics_path = options.out_dir + "/" + cell.name + ".metrics.json";
      expected.push_back(cell.name + ".metrics.json");
    }
    if (def.options.recovery) {
      harness.recovery.journal_path =
          options.out_dir + "/journals/" + cell.name + ".jsonl";
      harness.recovery.resume = options.resume;
    }

    int rc = 0;
    try {
      StdoutCapture capture{options.out_dir + "/" + cell.name + ".txt"};
      rc = run_study(def, cell.params, harness);
      capture.finish();
    } catch (const io::IoError& e) {
      // ENOSPC mid-suite: the cell's journal is fsync'd up to the failure,
      // so exit 75 (resumable) — free disk space, re-run with --resume, and
      // the suite completes byte-identically. Other persistent I/O errors
      // stay ordinary failures.
      if (e.disk_full()) {
        std::fprintf(stderr,
                     "%s: %s stopped: %s\n%s: disk full — journals intact; free "
                     "space and re-run with --resume to complete the suite\n",
                     tag.c_str(), cell.name.c_str(), e.what(), tag.c_str());
        exit_code = recovery::kExitInterrupted;
      } else {
        std::fprintf(stderr, "%s: %s failed: %s\n", tag.c_str(), cell.name.c_str(),
                     e.what());
        exit_code = 1;
      }
      break;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s failed: %s\n", tag.c_str(), cell.name.c_str(),
                   e.what());
      exit_code = 1;
      break;
    }
    if (rc != 0) {
      std::fprintf(stderr, "%s: %s exited with %d\n", tag.c_str(), cell.name.c_str(),
                   rc);
      exit_code = rc;
      break;
    }
    if (obs::RunRecord perf; obs::last_run_record(perf)) {
      cell_perf.push_back(std::move(perf));
    }

    for (const std::string& rel : expected) {
      ArtifactEntry artifact;
      if (checksum_artifact(options.out_dir, rel, artifact)) {
        result.artifacts.push_back(std::move(artifact));
      } else {
        std::fprintf(stderr, "%s: %s did not produce %s\n", tag.c_str(),
                     cell.name.c_str(), rel.c_str());
        exit_code = 1;
      }
    }
    results.push_back(std::move(result));
    if (exit_code != 0) break;
  }

  set_status_stream(stdout);
  if (exit_code != 0) return exit_code;

  write_manifest(tag, options.out_dir, manifest_extras, results);

  // Wall-clock sidecar + one suite-level ledger record carrying the
  // manifest's CRC — the (suite, manifest) identity `xres compare` diffs.
  const double suite_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - suite_start)
          .count();
  write_perf_sidecar(tag, options.out_dir, suite_wall, cell_perf);
  obs::RunRecord suite_record;
  suite_record.id = obs::mint_run_id();
  suite_record.study = "suite";
  suite_record.cell = tag;
  suite_record.suite = tag;
  suite_record.threads = options.threads;
  suite_record.build = build_describe();
  suite_record.params_digest = obs::params_digest(suite_record.params);
  const obs::PerfCounters suite_delta = obs::perf_delta(perf_before);
  suite_record.counters = obs::perf_counter_items(suite_delta);
  suite_record.wall_seconds = suite_wall;
  if (suite_wall > 0) {
    suite_record.trials_per_second =
        static_cast<double>(suite_delta.trials_executed) / suite_wall;
    suite_record.events_per_second =
        static_cast<double>(suite_delta.events_popped) / suite_wall;
  }
  suite_record.peak_rss = obs::peak_rss_bytes();
  if (std::string manifest_text;
      read_file(options.out_dir + "/" + kManifestName, manifest_text)) {
    suite_record.manifest_crc = crc32_hex(crc32(manifest_text));
  }
  if (obs::append_run_record("results/ledger.jsonl", suite_record)) {
    statusf("run recorded in ledger %s\n", "results/ledger.jsonl");
  }

  std::size_t artifact_count = 0;
  for (const CellResult& r : results) artifact_count += r.artifacts.size();
  std::fprintf(stderr, "%s: %zu studies, %zu artifacts, manifest written to %s/%s\n",
               tag.c_str(), results.size(), artifact_count, options.out_dir.c_str(),
               kManifestName);
  return 0;
}

int run_suite_paper(const SuiteOptions& options) {
  const std::vector<const StudyDefinition*> studies =
      StudyRegistry::instance().group_members(
          {StudyGroup::kFigure, StudyGroup::kTable});
  XRES_CHECK(!studies.empty(), "no figure/table studies registered");

  std::vector<SuiteCell> cells;
  cells.reserve(studies.size());
  for (const StudyDefinition* def : studies) {
    SuiteCell cell;
    cell.def = def;
    cell.name = def->name;
    cell.params = ParamSet{*def};
    if (options.trials != 0) {
      for (const char* key : {"trials", "patterns", "traces"}) {
        if (def->find_param(key) != nullptr) {
          cell.params.set(key, std::to_string(options.trials));
        }
      }
    }
    cells.push_back(std::move(cell));
  }

  return run_suite_cells("paper", cells, options, [&](obs::JsonWriter& w) {
    w.key("trials_override").value(static_cast<std::uint64_t>(options.trials));
  });
}

int verify_suite(const std::string& out_dir) {
  std::string text;
  if (!read_file(out_dir + "/" + kManifestName, text)) {
    std::fprintf(stderr, "suite verify: no %s in %s\n", kManifestName, out_dir.c_str());
    return 1;
  }
  recovery::JsonValue manifest;
  try {
    manifest = recovery::parse_json(text);
  } catch (const recovery::JsonParseError& e) {
    std::fprintf(stderr, "suite verify: malformed manifest: %s\n", e.what());
    return 1;
  }

  int problems = 0;
  std::size_t checked = 0;
  try {
    for (const recovery::JsonValue& study : manifest.at("studies").as_array()) {
      const std::string& name = study.at("study").as_string();
      for (const recovery::JsonValue& artifact : study.at("artifacts").as_array()) {
        const std::string& rel = artifact.at("path").as_string();
        const std::string& want = artifact.at("crc32").as_string();
        std::string content;
        if (!read_file(out_dir + "/" + rel, content)) {
          std::printf("MISSING  %s (%s)\n", rel.c_str(), name.c_str());
          ++problems;
          continue;
        }
        const std::string got = crc32_hex(crc32(content));
        if (got != want) {
          std::printf("MISMATCH %s (%s): manifest %s, file %s\n", rel.c_str(),
                      name.c_str(), want.c_str(), got.c_str());
          ++problems;
          continue;
        }
        ++checked;
      }
    }
  } catch (const recovery::JsonParseError& e) {
    std::fprintf(stderr, "suite verify: manifest missing fields: %s\n", e.what());
    return 1;
  }

  if (problems != 0) {
    std::printf("suite verify: %d problem(s), %zu artifact(s) OK\n", problems, checked);
    return 1;
  }
  std::printf("suite verify: all %zu artifact(s) match %s\n", checked, kManifestName);
  return 0;
}

}  // namespace xres::study
