#include "common.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/report.hpp"
#include "recovery/json_parse.hpp"
#include "util/rng.hpp"
#include "obs/profile.hpp"
#include "util/barchart.hpp"
#include "util/log.hpp"

namespace xres::bench {

void add_obs_options(CliParser& cli, bool with_trace) {
  cli.add_option("--metrics", "write deterministic study metrics JSON to this path "
                 "(byte-identical for every --threads value)", "");
  if (with_trace) {
    cli.add_option("--trace", "write a Chrome trace-event JSON (Perfetto-loadable, "
                   "sim-time spans) to this path", "");
  }
  cli.add_option("--log-level", "override XRES_LOG: trace|debug|info|warn|error|off", "");
}

ObsOptions read_obs_options(const CliParser& cli) {
  ObsOptions options;
  options.metrics_path = cli.str("--metrics");
  if (cli.has_option("--trace")) options.trace_path = cli.str("--trace");
  const std::string level = cli.str("--log-level");
  if (!level.empty()) Logger::global().set_level(parse_log_level(level));
  return options;
}

void add_common_options(CliParser& cli, std::uint32_t default_trials) {
  cli.add_option("--trials", "trials per bar (paper: 200)",
                 std::to_string(default_trials));
  cli.add_option("--seed", "root RNG seed", "20170529");
  add_threads_option(cli);
  cli.add_flag("--csv", "also emit raw CSV");
  cli.add_flag("--chart", "also render ASCII bars");
  cli.add_option("--csv-path", "write CSV to this file instead of stdout", "");
  cli.add_option("--report", "write a markdown study report to this path", "");
  add_obs_options(cli);
  add_recovery_options(cli);
}

void add_recovery_options(CliParser& cli) {
  cli.add_option("--journal", "stream completed trials to this write-ahead journal "
                 "(crash-safe; see docs/ROBUSTNESS.md)", "");
  cli.add_flag("--resume", "skip trials already recorded in --journal and reproduce "
               "the uninterrupted artifacts byte for byte");
  cli.add_option("--trial-timeout", "watchdog: seconds of wall time per trial attempt "
                 "before it is aborted (0 = no watchdog)", "0");
  cli.add_option("--trial-retries", "extra same-seed attempts for a failed or timed-out "
                 "trial before it is quarantined", "0");
}

RecoveryCliOptions read_recovery_options(const CliParser& cli) {
  RecoveryCliOptions options;
  options.journal_path = cli.str("--journal");
  options.resume = cli.flag("--resume");
  options.trial_timeout = cli.real("--trial-timeout");
  const std::int64_t retries = cli.integer("--trial-retries");
  if (options.resume && options.journal_path.empty()) {
    CliParser::usage_error("--resume needs --journal <path> (nothing to resume from)");
  }
  if (options.trial_timeout < 0.0) {
    CliParser::usage_error("--trial-timeout must be >= 0 seconds");
  }
  if (retries < 0 || retries > 100) {
    CliParser::usage_error("--trial-retries must be in [0, 100]");
  }
  options.trial_retries = static_cast<unsigned>(retries);
  return options;
}

HarnessOptions read_common_options(const CliParser& cli) {
  HarnessOptions options;
  options.trials = static_cast<std::uint32_t>(cli.integer("--trials"));
  options.seed = static_cast<std::uint64_t>(cli.integer("--seed"));
  options.threads = parse_threads_option(cli);
  options.csv = cli.flag("--csv");
  options.chart = cli.flag("--chart");
  options.csv_path = cli.str("--csv-path");
  options.report_path = cli.str("--report");
  options.obs = read_obs_options(cli);
  options.recovery = read_recovery_options(cli);
  return options;
}

RecoveryCoordinator::RecoveryCoordinator(const RecoveryCliOptions& cli, std::string study,
                                         std::uint64_t root_seed)
    : cli_{cli} {
  if (cli_.journal_path.empty()) return;

  recovery::JournalMeta meta;
  meta.study = std::move(study);
  meta.root_seed = root_seed;

  if (cli_.resume) {
    index_.emplace(recovery::ResumeIndex::load(cli_.journal_path, meta));
    const recovery::JournalLoadStats& stats = index_->stats();
    if (stats.found) {
      std::printf("journal %s: %zu trial(s) to resume", cli_.journal_path.c_str(),
                  index_->size());
      if (stats.corrupt_records != 0) {
        std::printf(", %zu corrupt record(s) skipped", stats.corrupt_records);
      }
      if (stats.duplicate_records != 0) {
        std::printf(", %zu duplicate(s) ignored", stats.duplicate_records);
      }
      if (stats.torn_tail) std::printf(", torn tail dropped");
      std::printf("\n");
    } else {
      std::printf("journal %s: not found, starting fresh\n", cli_.journal_path.c_str());
    }
  } else {
    // A fresh (non-resume) run replaces any stale journal: appending to it
    // would let a later --resume resurrect the previous run's records.
    std::remove(cli_.journal_path.c_str());
  }
  journal_ = std::make_unique<recovery::TrialJournal>(cli_.journal_path, meta);
  recovery::install_shutdown_handlers();
}

recovery::TrialRecoveryOptions RecoveryCoordinator::options() {
  recovery::TrialRecoveryOptions options;
  options.journal = journal_.get();
  options.resume = index_.has_value() ? &*index_ : nullptr;
  options.trial_timeout_seconds = cli_.trial_timeout;
  options.trial_attempts = cli_.trial_retries + 1;
  return options;
}

int RecoveryCoordinator::finish() {
  if (journal_ != nullptr) journal_->flush();
  if (cli_.any() || report_.interrupted) {
    std::printf("recovery: %s\n", report_.summary().c_str());
  }
  if (report_.interrupted) {
    std::printf("interrupted by signal %d — journal flushed", recovery::shutdown_signal());
    if (journal_ != nullptr) {
      std::printf("; resume with --journal %s --resume", journal_->path().c_str());
    }
    std::printf("\n");
    return recovery::kExitInterrupted;
  }
  return 0;
}

std::vector<ExecutionResult> ObsCollector::run_batch(const TrialExecutor& executor,
                                                     std::uint64_t root_seed,
                                                     std::span<const TrialSpec> specs,
                                                     const std::string& label,
                                                     const TrialProgress& progress) {
  if (!options_.enabled()) return executor.run_batch(root_seed, specs, progress);

  std::vector<obs::TrialObs> observers(specs.size());
  for (obs::TrialObs& o : observers) {
    if (options_.metrics()) o.enable_metrics();
  }
  if (options_.trace() && !observers.empty()) observers.front().enable_trace();
  std::vector<ExecutionResult> results =
      executor.run_batch(root_seed, specs, observers, progress);
  if (options_.metrics()) {
    if (!metrics_.has_value()) metrics_.emplace();
    // Merge in spec order: byte-identical for every thread count.
    for (const obs::TrialObs& o : observers) metrics_->merge(*o.metrics());
  }
  if (options_.trace() && !observers.empty()) {
    trace_.add_track(label, std::move(*observers.front().trace()));
  }
  return results;
}

std::vector<ExecutionResult> ObsCollector::run_batch(const TrialExecutor& executor,
                                                     std::uint64_t root_seed,
                                                     std::span<const TrialSpec> specs,
                                                     const std::string& label,
                                                     RecoveryCoordinator& coordinator,
                                                     const TrialProgress& progress) {
  recovery::BatchReport report;
  std::vector<obs::TrialObs> observers;
  if (options_.enabled()) {
    observers.resize(specs.size());
    for (obs::TrialObs& o : observers) {
      if (options_.metrics()) o.enable_metrics();
    }
    if (options_.trace() && !observers.empty()) observers.front().enable_trace();
  }
  std::vector<ExecutionResult> results = executor.run_batch(
      root_seed, specs, observers, coordinator.options(), label, &report, progress);
  coordinator.absorb(report);
  // On an interrupted batch the observers of undrained trials are empty;
  // merging them is harmless because the driver withholds artifacts.
  if (options_.metrics() && !observers.empty()) {
    if (!metrics_.has_value()) metrics_.emplace();
    for (const obs::TrialObs& o : observers) metrics_->merge(*o.metrics());
  }
  if (options_.trace() && !observers.empty()) {
    trace_.add_track(label, std::move(*observers.front().trace()));
  }
  return results;
}

void ObsCollector::finish() {
  if (options_.metrics() && metrics_.has_value()) {
    std::printf("\nInstrumented breakdown (whole sweep):\n%s",
                metrics_->to_table().to_text().c_str());
    metrics_->write_json(options_.metrics_path);
    std::printf("metrics written to %s\n", options_.metrics_path.c_str());
  }
  if (options_.trace() && !trace_.empty()) {
    trace_.write(options_.trace_path);
    std::printf("trace written to %s (%zu tracks, %zu events)\n",
                options_.trace_path.c_str(), trace_.track_count(), trace_.event_count());
  }
}

namespace {

/// FNV-1a over the batch label, mixed into the per-pattern fingerprint so an
/// edited sweep grid reads its old records as stale instead of wrong.
std::uint64_t label_hash(const std::string& label) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

void run_patterns_controlled(
    RecoveryCoordinator& coordinator, const TrialExecutor& executor,
    const std::string& label, std::uint32_t patterns, std::uint64_t root_seed,
    const std::function<WorkloadOutcome(std::uint32_t)>& run,
    const std::function<void(std::uint32_t, const WorkloadOutcome&)>& consume) {
  const recovery::TrialRecoveryOptions rec = coordinator.options();
  std::vector<WorkloadOutcome> outcomes(patterns);
  std::atomic<std::size_t> stale{0};

  const auto fingerprint = [&](std::size_t idx) {
    return derive_seed(root_seed, label_hash(label), idx);
  };
  const auto journal_outcome = [&](std::size_t idx, const WorkloadOutcome& outcome) {
    if (rec.journal == nullptr) return;
    recovery::JournalRecord record;
    record.batch = label;
    record.index = idx;
    record.seed = fingerprint(idx);
    record.payload = serialize_workload_outcome(outcome);
    rec.journal->append(record);
  };

  TrialLoopControl control;
  control.trial_timeout_seconds = rec.trial_timeout_seconds;
  control.trial_attempts = rec.trial_attempts;
  control.drain_on_shutdown = rec.drain_on_shutdown;
  if (rec.resume != nullptr) {
    control.already_done = [&](std::size_t idx) {
      const recovery::JournalRecord* record = rec.resume->find(label, idx);
      if (record == nullptr) return false;
      if (record->seed != fingerprint(idx)) {
        stale.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      try {
        outcomes[idx] = parse_workload_outcome(record->payload);
      } catch (const recovery::JsonParseError&) {
        stale.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      return true;
    };
  }
  if (rec.quarantine_enabled()) {
    control.quarantine = [&](std::size_t idx, const std::string& reason) {
      outcomes[idx] = WorkloadOutcome{};
      outcomes[idx].quarantined = true;
      outcomes[idx].quarantine_reason = reason;
      journal_outcome(idx, outcomes[idx]);
    };
  }

  recovery::BatchReport report;
  executor.for_each_controlled(
      patterns,
      [&](std::size_t idx) {
        outcomes[idx] = run(static_cast<std::uint32_t>(idx));
        journal_outcome(idx, outcomes[idx]);
      },
      control, &report);
  report.stale_records += stale.load(std::memory_order_relaxed);
  coordinator.absorb(report);

  if (report.interrupted) return;  // partial sweep: caller withholds artifacts
  for (std::uint32_t p = 0; p < patterns; ++p) consume(p, outcomes[p]);
}

int run_efficiency_figure(const std::string& title, EfficiencyStudyConfig config,
                          const HarnessOptions& options) {
  obs::PhaseProfiler profiler;
  profiler.begin("setup");
  config.trials = options.trials;
  config.seed = options.seed;
  config.threads = options.threads;
  config.collect_metrics = options.obs.metrics();
  config.collect_trace = options.obs.trace();

  std::printf("%s\n", title.c_str());
  std::printf("machine: %s\n", config.machine.describe().c_str());
  std::printf("node MTBF: %s; baseline T_B: %s; %u trials per bar; %u threads\n\n",
              to_string(config.resilience.node_mtbf).c_str(),
              to_string(config.baseline).c_str(), config.trials,
              TrialExecutor{options.threads}.threads());

  RecoveryCoordinator coordinator{options.recovery, title, config.seed};
  config.recovery = coordinator.options();

  profiler.begin("run");
  obs::ProgressMeter meter{"cell"};
  const EfficiencyStudyResult result = run_efficiency_study(config, meter.callback());
  coordinator.absorb(result.recovery_report);

  if (coordinator.interrupted()) {
    // Partial progress only: completed cells are journaled, artifacts are
    // withheld so nothing half-reduced reaches downstream tooling.
    return coordinator.finish();
  }

  profiler.begin("reduce");
  std::printf("%s", result.to_table().to_text().c_str());

  if (options.chart) {
    std::vector<std::string> series;
    for (TechniqueKind kind : config.techniques) series.emplace_back(to_string(kind));
    BarChart chart{series};
    for (std::size_t si = 0; si < config.size_fractions.size(); ++si) {
      std::vector<double> values;
      for (const Summary& s : result.efficiency[si]) values.push_back(s.mean);
      chart.add_category(fmt_percent(config.size_fractions[si], 0), values);
    }
    std::printf("\n%s", chart.render(50, 1.0).c_str());
  }

  if (options.csv || !options.csv_path.empty()) {
    const Table csv = result.to_csv_table();
    if (options.csv_path.empty()) {
      std::printf("\n%s", csv.to_csv().c_str());
    } else {
      csv.write_csv(options.csv_path);
      std::printf("CSV written to %s\n", options.csv_path.c_str());
    }
  }

  if (options.obs.metrics()) {
    std::printf("\nInstrumented breakdown (per technique, whole study):\n%s",
                result.to_metrics_table().to_text().c_str());
    result.metrics->write_json(options.obs.metrics_path);
    std::printf("metrics written to %s\n", options.obs.metrics_path.c_str());
  }
  if (options.obs.trace()) {
    result.trace.write(options.obs.trace_path);
    std::printf("trace written to %s (%zu tracks, %zu events; open in Perfetto)\n",
                options.obs.trace_path.c_str(), result.trace.track_count(),
                result.trace.event_count());
  }

  if (!options.report_path.empty()) {
    StudyReport report{title};
    report.add_config("machine", config.machine.describe());
    report.add_config("node MTBF", to_string(config.resilience.node_mtbf));
    report.add_config("application type", config.app_type.name);
    report.add_config("baseline T_B", to_string(config.baseline));
    report.add_config("trials per bar", std::to_string(config.trials));
    report.add_config("seed", std::to_string(config.seed));
    report.add_paragraph(
        "Efficiency = delay-free baseline execution time divided by the "
        "simulated execution time with failures and resilience overhead "
        "(mean ± sample standard deviation across trials).");
    report.add_table("Efficiency by system share", result.to_table());
    report.add_table("Raw data", result.to_csv_table());
    if (result.metrics.has_value()) {
      report.add_table("Instrumented breakdown", result.to_metrics_table());
    }
    report.write(options.report_path);
    std::printf("report written to %s\n", options.report_path.c_str());
  }

  profiler.end();
  std::printf("(efficiency = baseline / simulated execution time; phases: %s)\n",
              profiler.summary().c_str());
  return coordinator.finish();
}

}  // namespace xres::bench
