#pragma once

/// \file workload_record.hpp
/// Journal payload for one workload pattern run — the workload-study
/// counterpart of recovery/trial_record.hpp. Serializes the full
/// `WorkloadRunResult` (minus the occupancy log: occupancy-recording runs
/// are re-run on resume, like trace-collecting trials) plus the optional
/// per-run `MetricSet`, in shortest-round-trip number form, so a resumed
/// workload study reduces to byte-identical tables and metrics.

#include <optional>
#include <string>

#include "core/workload_engine.hpp"
#include "obs/metrics.hpp"

namespace xres {

/// One journaled pattern-run outcome.
struct WorkloadOutcome {
  WorkloadRunResult result{};
  bool quarantined{false};
  std::string quarantine_reason;
  std::optional<obs::MetricSet> metrics;
};

/// Serialize \p outcome as one JSON object (journal record "p" field).
[[nodiscard]] std::string serialize_workload_outcome(const WorkloadOutcome& outcome);

/// Inverse of serialize_workload_outcome. Throws recovery::JsonParseError on
/// malformed payloads or a metric-registry mismatch — callers treat either
/// as "re-run this pattern".
[[nodiscard]] WorkloadOutcome parse_workload_outcome(const std::string& payload);

}  // namespace xres
