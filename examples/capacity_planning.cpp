// Capacity planning: how reliable do exascale components need to be for
// each resilience technique to stay viable? Sweeps the per-node MTBF and
// reports each technique's efficiency for an exascale-sized application —
// the Figure-3 sensitivity study generalized into a planning tool.
//
//   $ ./capacity_planning --type D64 --trials 20

#include <cstdio>
#include <vector>

#include "apps/app_type.hpp"
#include "core/single_app_study.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace xres;
  CliParser cli{"capacity_planning — technique efficiency vs. component MTBF "
                "for an exascale-sized application"};
  cli.add_option("--type", "application type (Table I)", "D64");
  cli.add_option("--trials", "simulated trials per cell", "20");
  cli.add_option("--target", "viability threshold on efficiency", "0.5");
  add_threads_option(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;

  const auto trials = static_cast<std::uint32_t>(cli.integer("--trials"));
  const TrialExecutor executor{parse_threads_option(cli)};
  const double target = cli.real("--target");
  const AppSpec app{app_type_by_name(cli.str("--type")), 120000, 1440};

  const std::vector<TechniqueKind> techniques{TechniqueKind::kCheckpointRestart,
                                              TechniqueKind::kMultilevel,
                                              TechniqueKind::kParallelRecovery};
  const std::vector<double> mtbf_years{1.0, 2.5, 5.0, 10.0, 20.0, 50.0};

  std::printf("capacity planning: efficiency of an exascale %s application "
              "(123M cores) vs. node MTBF\n\n",
              app.type.name.c_str());

  Table table{{"node MTBF", "system MTBF", "checkpoint-restart", "multilevel",
               "parallel-recovery"}};
  std::vector<double> first_viable(techniques.size(), -1.0);
  for (double years : mtbf_years) {
    std::vector<std::string> row{fmt_double(years, 1) + " y"};
    const Rate system_rate = Rate::one_per(Duration::years(years)) * 120000.0;
    row.push_back(to_string(system_rate.mean_interval()));
    for (std::size_t k = 0; k < techniques.size(); ++k) {
      SingleAppTrialConfig config;
      config.app = app;
      config.technique = techniques[k];
      config.resilience.node_mtbf = Duration::years(years);
      std::vector<TrialSpec> specs;
      specs.reserve(trials);
      for (std::uint32_t t = 0; t < trials; ++t) {
        specs.push_back(TrialSpec{config, {k, t}});
      }
      RunningStats stats;
      for (const ExecutionResult& r : executor.run_batch(42, specs)) {
        stats.add(r.efficiency);
      }
      row.push_back(fmt_mean_std(stats.mean(), stats.stddev()));
      if (first_viable[k] < 0.0 && stats.mean() >= target) first_viable[k] = years;
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_text().c_str());

  for (std::size_t k = 0; k < techniques.size(); ++k) {
    if (first_viable[k] >= 0.0) {
      std::printf("%-20s viable (efficiency >= %.0f%%) from ~%.1f-year node MTBF\n",
                  to_string(techniques[k]), target * 100.0, first_viable[k]);
    } else {
      std::printf("%-20s not viable at any swept MTBF\n", to_string(techniques[k]));
    }
  }
  return 0;
}
