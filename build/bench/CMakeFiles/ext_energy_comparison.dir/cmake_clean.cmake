file(REMOVE_RECURSE
  "CMakeFiles/ext_energy_comparison.dir/ext_energy_comparison.cpp.o"
  "CMakeFiles/ext_energy_comparison.dir/ext_energy_comparison.cpp.o.d"
  "ext_energy_comparison"
  "ext_energy_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_energy_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
