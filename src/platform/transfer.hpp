#pragma once

/// \file transfer.hpp
/// Checkpoint data-movement cost model: the paper's Equations 3, 5 and 6.
///
/// All three costs take the *per-node* checkpoint image size N_m; the PFS
/// path additionally scales with the application's node count N_a because
/// the parallel file system serializes traffic across N_S switch
/// connections (bandwidth contention), while RAM and partner-copy
/// checkpoints proceed on every node in parallel.

#include <cstdint>

#include "platform/spec.hpp"
#include "util/units.hpp"

namespace xres {

/// Eq. 3: T_C_PFS = (N_m / B_N) * (N_a / N_S).
/// Time to write (or read — costs are symmetric, Section IV-C) a
/// coordinated checkpoint of an N_a-node application to the parallel file
/// system.
[[nodiscard]] Duration pfs_checkpoint_time(DataSize memory_per_node,
                                           std::uint32_t app_nodes,
                                           const NetworkSpec& net);

/// Eq. 5: T_C_L1 = N_m / B_M. Level-1 checkpoint to node-local RAM.
[[nodiscard]] Duration local_memory_checkpoint_time(DataSize memory_per_node,
                                                    const NodeSpec& node);

/// Eq. 6: T_C_L2 = 2 (T_C_L1 + L + N_m / B_M). Level-2 checkpoint to a
/// contiguous partner node: each node both sends its image and stores its
/// partner's (hence the factor of two).
[[nodiscard]] Duration partner_copy_checkpoint_time(DataSize memory_per_node,
                                                    const NodeSpec& node,
                                                    const NetworkSpec& net);

}  // namespace xres
