#include "runtime/result.hpp"

#include <cstdio>

#include "obs/trial_obs.hpp"

namespace xres {

void record_result_metrics(obs::TrialObs* obs, const ExecutionResult& r) {
  if (obs == nullptr || obs->metrics() == nullptr) return;
  const obs::BuiltinMetrics& m = obs::builtin_metrics();
  obs->count(r.completed ? m.app_runs_completed : m.app_runs_aborted);
  obs->count(m.failures_seen, r.failures_seen);
  obs->count(m.failures_masked, r.failures_masked);
  obs->count(m.rollbacks, r.rollbacks);
  obs->count(m.checkpoints_completed, r.checkpoints_completed);
  constexpr double kHour = 3600.0;
  obs->add(m.work_hours, r.time_working.to_seconds() / kHour);
  obs->add(m.checkpoint_hours, r.time_checkpointing.to_seconds() / kHour);
  obs->add(m.restart_hours, r.time_restarting.to_seconds() / kHour);
  obs->add(m.recovery_hours, r.time_recovering.to_seconds() / kHour);
  obs->add(m.rework_hours, r.rework.to_seconds() / kHour);
  obs->add(m.wall_hours, r.wall_time.to_seconds() / kHour);
  obs->add(m.node_hours, r.node_seconds / kHour);
}

std::string ExecutionResult::describe() const {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "%s in %s (baseline %s, efficiency %.3f)\n"
      "  failures: %llu seen, %llu masked, %llu rollbacks; checkpoints: %llu\n"
      "  time: work %s, checkpoint %s, restart %s, recovery %s, rework %s\n"
      "  energy proxy: %.3e node-seconds",
      completed ? "completed" : "aborted", to_string(wall_time).c_str(),
      to_string(baseline).c_str(), efficiency,
      static_cast<unsigned long long>(failures_seen),
      static_cast<unsigned long long>(failures_masked),
      static_cast<unsigned long long>(rollbacks),
      static_cast<unsigned long long>(checkpoints_completed),
      to_string(time_working).c_str(), to_string(time_checkpointing).c_str(),
      to_string(time_restarting).c_str(), to_string(time_recovering).c_str(),
      to_string(rework).c_str(), node_seconds);
  return buf;
}

}  // namespace xres
