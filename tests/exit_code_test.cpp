// Pins the process exit-code contract (docs/ROBUSTNESS.md): 0 success,
// 1 runtime failure, 2 CLI usage error, 75 clean resumable interruption,
// 86 injected crash-point. Each code is asserted against its authoritative
// constant plus a death test for the paths that exit directly, so a silent
// renumbering cannot ship — resume scripts and the tier-1 fault stage
// branch on these exact values.

#include <gtest/gtest.h>

#include <csignal>

#include "recovery/shutdown.hpp"
#include "util/cli.hpp"
#include "util/io.hpp"

namespace xres {
namespace {

TEST(ExitCodeContract, ConstantsArePinnedAndDistinct) {
  // The contract values scripts depend on. Changing any of these is an
  // interface break, not a refactor.
  EXPECT_EQ(CliParser::kExitUsage, 2);
  EXPECT_EQ(recovery::kExitInterrupted, 75);
  EXPECT_EQ(io::kCrashExitCode, 86);

  static_assert(CliParser::kExitUsage != 0 && CliParser::kExitUsage != 1,
                "usage errors must be distinct from success and failure");
  static_assert(recovery::kExitInterrupted != CliParser::kExitUsage,
                "resumable interruption must be distinct from usage errors");
  static_assert(io::kCrashExitCode != recovery::kExitInterrupted &&
                    io::kCrashExitCode != CliParser::kExitUsage,
                "injected crashes must be distinguishable from real exits");
  // Signal escalation codes (128+sig) must not collide with the contract.
  static_assert(recovery::kExitInterrupted < 128 && io::kCrashExitCode < 128,
                "contract codes must stay below the 128+signal range");
}

TEST(ExitCodeContract, SignalEscalationUsesShellConvention) {
  recovery::clear_shutdown_for_tests();
  EXPECT_EQ(recovery::note_shutdown_signal(SIGINT), 0);
  EXPECT_EQ(recovery::note_shutdown_signal(SIGINT), 128 + SIGINT);
  EXPECT_EQ(recovery::note_shutdown_signal(SIGTERM), 128 + SIGTERM);
  recovery::clear_shutdown_for_tests();
}

TEST(ExitCodeContract, UsageErrorExitsTwoWithOneLineDiagnostic) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_EXIT(CliParser::usage_error("bad --widget value"),
              ::testing::ExitedWithCode(CliParser::kExitUsage),
              "bad --widget value");
}

void parse_unknown_flag() {
  CliParser cli{"exit-code test"};
  cli.add_option("--trials", "trial count", "1");
  const char* argv[] = {"prog", "--no-such-flag"};
  (void)cli.parse_or_exit(2, argv);
}

TEST(ExitCodeContract, UnknownOptionExitsTwo) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_EXIT(parse_unknown_flag(),
              ::testing::ExitedWithCode(CliParser::kExitUsage),
              "no-such-flag");
}

TEST(ExitCodeContract, MalformedFaultSpecIsAUsageErrorAtTheCli) {
  // The CLI maps parse_fault_spec failures onto usage_error (exit 2); the
  // underlying parse failure itself is a CheckError carrying the message
  // the user sees.
  try {
    (void)io::parse_fault_spec("7:nope");
    FAIL() << "malformed spec must throw";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string{e.what()}.find("io-faults"), std::string::npos);
  }
}

}  // namespace
}  // namespace xres
