#pragma once

/// \file result.hpp
/// Outcome of one resilient application execution.

#include <cstdint>
#include <string>

#include "util/units.hpp"

namespace xres {

namespace obs {
class TrialObs;
}

struct ExecutionResult {
  /// True when the application finished all of its work (false: aborted by
  /// the wall-time cap or dropped externally).
  bool completed{false};

  /// Wall-clock execution time (start to completion or abort).
  Duration wall_time{};

  /// Unstretched baseline T_B.
  Duration baseline{};

  /// T_B / wall_time when completed, else 0 (the Figures 1–3 metric).
  double efficiency{0.0};

  std::uint64_t failures_seen{0};    ///< failures delivered to the application
  std::uint64_t failures_masked{0};  ///< absorbed by redundancy / idle-node hits
  std::uint64_t rollbacks{0};        ///< failures that forced a restart
  std::uint64_t checkpoints_completed{0};

  Duration time_working{};        ///< forward progress + recomputation
  Duration time_checkpointing{};  ///< blocked saving checkpoints
  Duration time_restarting{};     ///< restoring checkpoints
  Duration time_recovering{};     ///< parallel-recovery replay (PR only)
  Duration rework{};              ///< work redone after rollbacks

  /// Energy proxy: active node-seconds integrated over all phases. Parallel
  /// recovery idles all but (1 + P) nodes while recovering, which is its
  /// energy advantage (Section II-D).
  double node_seconds{0.0};

  /// Multi-line human-readable report.
  [[nodiscard]] std::string describe() const;
};

/// Fold a finished execution's outcome counters and phase-time gauges into
/// \p obs (no-op when null or metrics are disabled). Covers exactly what
/// the runtime does NOT observe per event, so executors can call both
/// without double counting.
void record_result_metrics(obs::TrialObs* obs, const ExecutionResult& result);

}  // namespace xres
