# Empty compiler generated dependencies file for xres_platform.
# This may be replaced when dependencies are built.
