file(REMOVE_RECURSE
  "CMakeFiles/xres_apps.dir/app_type.cpp.o"
  "CMakeFiles/xres_apps.dir/app_type.cpp.o.d"
  "CMakeFiles/xres_apps.dir/application.cpp.o"
  "CMakeFiles/xres_apps.dir/application.cpp.o.d"
  "CMakeFiles/xres_apps.dir/swf.cpp.o"
  "CMakeFiles/xres_apps.dir/swf.cpp.o.d"
  "CMakeFiles/xres_apps.dir/workload.cpp.o"
  "CMakeFiles/xres_apps.dir/workload.cpp.o.d"
  "libxres_apps.a"
  "libxres_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xres_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
