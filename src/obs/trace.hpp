#pragma once

/// \file trace.hpp
/// Sim-time event tracing in Chrome trace-event JSON (the format Perfetto
/// and chrome://tracing load directly).
///
/// Timestamps are **simulated** time — microseconds since the simulation
/// origin — never wall-clock, so a trace is a deterministic function of the
/// trial's seed and renders identically regardless of thread count or host
/// speed. Each traced trial appends into its own single-threaded
/// `TraceBuffer`; a `TraceLog` assembles buffers into named tracks (one
/// Perfetto "thread" per track) and serializes the whole document.
///
/// Span taxonomy (see docs/OBSERVABILITY.md):
///   cat "phase":   work / checkpoint L<n> / restart / recovery spans
///   cat "failure": failure / rollback instants
///   cat "run":     complete / abort instants

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace xres::obs {

/// One key/value pair in a trace event's "args" object. `value` is either a
/// pre-rendered JSON literal (quoted = false) or a raw string to be escaped
/// and quoted at serialization time (quoted = true).
struct TraceArg {
  std::string key;
  std::string value;
  bool quoted{false};
};

[[nodiscard]] TraceArg trace_arg(std::string key, double value);
[[nodiscard]] TraceArg trace_arg(std::string key, std::uint64_t value);
[[nodiscard]] TraceArg trace_arg(std::string key, int value);
[[nodiscard]] TraceArg trace_arg(std::string key, bool value);
[[nodiscard]] TraceArg trace_arg(std::string key, std::string value);

struct TraceEvent {
  char ph{'X'};  ///< 'X' complete span, 'i' instant
  std::string name;
  std::string category;
  std::int64_t ts_us{0};   ///< sim time, microseconds since origin
  std::int64_t dur_us{0};  ///< span length ('X' only)
  std::vector<TraceArg> args;
};

/// Append-only per-trial event sink. Not thread-safe: one buffer belongs to
/// one trial.
class TraceBuffer {
 public:
  void span(std::string name, std::string category, TimePoint start, Duration length,
            std::vector<TraceArg> args = {});
  void instant(std::string name, std::string category, TimePoint at,
               std::vector<TraceArg> args = {});

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

 private:
  std::vector<TraceEvent> events_;
};

/// A full trace document: named tracks in insertion order. Track i renders
/// as pid 0 / tid i+1 with a thread_name metadata record.
class TraceLog {
 public:
  void add_track(std::string name, TraceBuffer buffer);

  [[nodiscard]] std::size_t track_count() const { return tracks_.size(); }
  [[nodiscard]] bool empty() const { return tracks_.empty(); }
  [[nodiscard]] std::size_t event_count() const;

  /// The Chrome trace-event document:
  /// {"displayTimeUnit":"ms","traceEvents":[...]}.
  [[nodiscard]] std::string to_json() const;

  /// to_json() to \p path; throws CheckError on I/O failure.
  void write(const std::string& path) const;

 private:
  struct Track {
    std::string name;
    TraceBuffer buffer;
  };
  std::vector<Track> tracks_;
};

}  // namespace xres::obs
