// Extension bench: energy comparison of the resilience techniques (the
// paper's companion study [7], reproduced on this simulator). Parallel
// recovery's signature property is that recovery engages only (1 + P)
// nodes while the rest of the allocation idles at low power; redundancy
// pays for extra always-on nodes.

#include <cstdio>
#include <vector>

#include "apps/app_type.hpp"
#include "core/single_app_study.hpp"
#include "runtime/power.hpp"
#include "resilience/planner.hpp"
#include "study/context.hpp"
#include "study/platform_params.hpp"
#include "study/registry.hpp"

namespace {
using namespace xres;

int run(study::StudyContext& ctx) {
  const auto trials = ctx.params().u32("trials");
  const std::uint64_t seed = ctx.seed();
  const TrialExecutor executor = ctx.make_executor();
  study::ObsCollector& collector = ctx.collector();
  study::RecoveryCoordinator& coordinator = ctx.recovery();

  MachineSpec machine = MachineSpec::exascale();
  study::apply_platform_params(machine, ctx.params());
  const auto nodes = static_cast<std::uint32_t>(ctx.params().real("system-share") *
                                                machine.node_count);
  const AppSpec app{app_type_by_name(ctx.params().str("type")), nodes, 1440};
  const ResilienceConfig resilience;
  const NodePowerSpec power;

  std::printf("Extension: energy per resilience technique\n");
  std::printf("application %s; node power %.0f W active / %.0f W idle; %u trials\n\n",
              app.describe().c_str(), power.active_watts, power.idle_watts, trials);

  Table table{{"technique", "efficiency", "energy (MWh)", "vs ideal", "idle share"}};
  // Ideal baseline energy: all nodes active for the baseline.
  const double ideal_mwh = static_cast<double>(app.nodes) *
                           app.baseline_time().to_seconds() * power.active_watts /
                           3.6e9;
  for (TechniqueKind kind : evaluated_techniques()) {
    const ExecutionPlan plan = make_plan(kind, app, machine, resilience);
    if (!plan.feasible) {
      table.add_row({to_string(kind), "0 (infeasible)", "-", "-", "-"});
      continue;
    }
    std::vector<TrialSpec> specs;
    specs.reserve(trials);
    for (std::uint32_t t = 0; t < trials; ++t) {
      specs.push_back(TrialSpec{
          PlanTrialSpec{plan, resilience, FailureDistribution::exponential()}, {t}});
    }
    RunningStats eff;
    RunningStats mwh;
    RunningStats idle_share;
    for (const ExecutionResult& r :
         collector.run_batch(executor, seed, specs, to_string(kind), coordinator)) {
      const EnergyReport energy = execution_energy(r, plan.physical_nodes, power);
      eff.add(r.efficiency);
      mwh.add(energy.kilowatt_hours() / 1000.0);
      idle_share.add(energy.idle_node_seconds /
                     (energy.active_node_seconds + energy.idle_node_seconds));
    }
    table.add_row({to_string(kind), fmt_mean_std(eff.mean(), eff.stddev()),
                   fmt_double(mwh.mean(), 1), fmt_double(mwh.mean() / ideal_mwh, 2) + "x",
                   fmt_percent(idle_share.mean(), 2)});
  }
  std::printf("%s", table.to_text().c_str());
  if (coordinator.interrupted()) return coordinator.finish();
  collector.finish();
  std::printf("(ideal failure-free energy: %.1f MWh)\n", ideal_mwh);
  return coordinator.finish();
}

study::StudyDefinition make() {
  study::StudyDefinition def;
  def.name = "ext_energy_comparison";
  def.group = study::StudyGroup::kExtension;
  def.description =
      "energy consumed per resilience technique (companion study [7])";
  def.summary = "ext_energy_comparison — energy per technique (companion study [7])";
  def.options.default_seed = 11;
  def.params.integer("trials", "trials per technique", 40).min(1);
  def.params.text("type", "application type (Table I)", "C64");
  def.params.real("system-share", "fraction of machine used", 0.25)
      .min(0.0001)
      .max(1.0);
  def.run = run;
  return def;
}

const study::Registration registered{make()};

}  // namespace
