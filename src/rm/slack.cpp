#include "rm/scheduler.hpp"

#include <algorithm>

namespace xres {

Duration SlackScheduler::slack(const Job& job, TimePoint now) {
  const TimePoint effective_start = std::max(now, job.arrival);
  return (job.deadline - effective_start) - job.spec.baseline_time();
}

void SlackScheduler::map(const std::vector<const Job*>& pending, SchedulerContext& ctx,
                         Pcg32& /*rng*/) {
  // Drop infeasible jobs, then greedily start in increasing-slack order;
  // jobs that do not fit stay unmapped (Section III-D3).
  std::vector<std::pair<Duration, const Job*>> queue;
  queue.reserve(pending.size());
  for (const Job* job : pending) {
    const Duration s = slack(*job, ctx.now());
    if (s < Duration::zero()) {
      ctx.drop(*job);
    } else {
      queue.emplace_back(s, job);
    }
  }
  std::stable_sort(queue.begin(), queue.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [s, job] : queue) {
    ctx.try_start(*job);
  }
}

}  // namespace xres
