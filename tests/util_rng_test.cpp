// Unit and statistical tests for the PCG32 generator and distributions.

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace xres {
namespace {

TEST(Pcg32, DeterministicForFixedSeed) {
  Pcg32 a{42, 7};
  Pcg32 b{42, 7};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u32(), b.next_u32());
  }
}

TEST(Pcg32, DifferentSeedsDiffer) {
  Pcg32 a{42};
  Pcg32 b{43};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, DifferentStreamsDiffer) {
  Pcg32 a{42, 1};
  Pcg32 b{42, 2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, DoublesInUnitInterval) {
  Pcg32 rng{1};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Pcg32, UniformMeanIsCentered) {
  Pcg32 rng{2};
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform(2.0, 6.0));
  EXPECT_NEAR(stats.mean(), 4.0, 0.02);
  EXPECT_GE(stats.min(), 2.0);
  EXPECT_LT(stats.max(), 6.0);
}

TEST(Pcg32, NextBelowIsUnbiased) {
  Pcg32 rng{3};
  std::array<int, 5> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.next_below(5)]++;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.01);
  }
}

TEST(Pcg32, UniformIntCoversInclusiveRange) {
  Pcg32 rng{4};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Pcg32, BernoulliMatchesProbability) {
  Pcg32 rng{5};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Pcg32, ExponentialHasCorrectMean) {
  Pcg32 rng{6};
  const Rate rate = Rate::per_hour(2.0);  // mean 30 min
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.exponential(rate).to_minutes());
  EXPECT_NEAR(stats.mean(), 30.0, 0.5);
  // Exponential: stddev == mean.
  EXPECT_NEAR(stats.stddev(), 30.0, 0.7);
}

TEST(Pcg32, ExponentialZeroRateIsNever) {
  Pcg32 rng{7};
  EXPECT_FALSE(rng.exponential(Rate::zero()).is_finite());
}

TEST(Pcg32, WeibullShapeOneIsExponential) {
  Pcg32 rng{8};
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.add(rng.weibull(1.0, Duration::minutes(10.0)).to_minutes());
  }
  EXPECT_NEAR(stats.mean(), 10.0, 0.2);
  EXPECT_NEAR(stats.stddev(), 10.0, 0.3);
}

TEST(Pcg32, WeibullShapeTwoHasGammaMean) {
  Pcg32 rng{9};
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.add(rng.weibull(2.0, Duration::minutes(10.0)).to_minutes());
  }
  // mean = scale * Gamma(1.5) = 10 * 0.8862.
  EXPECT_NEAR(stats.mean(), 8.862, 0.15);
}

TEST(Pcg32, NormalIsStandard) {
  Pcg32 rng{10};
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(DeriveSeed, OrderAndValueSensitive) {
  EXPECT_NE(derive_seed(1, 2, 3), derive_seed(1, 3, 2));
  EXPECT_NE(derive_seed(1, 2, 3), derive_seed(2, 2, 3));
  EXPECT_EQ(derive_seed(1, 2, 3), derive_seed(1, 2, 3));
}

TEST(DiscreteDistribution, ProbabilitiesNormalized) {
  const std::vector<double> w{2.0, 6.0, 2.0};
  DiscreteDistribution dist{w};
  EXPECT_DOUBLE_EQ(dist.probability(0), 0.2);
  EXPECT_DOUBLE_EQ(dist.probability(1), 0.6);
  EXPECT_DOUBLE_EQ(dist.probability(2), 0.2);
}

TEST(DiscreteDistribution, RejectsInvalidWeights) {
  const std::vector<double> empty;
  const std::vector<double> zeros{0.0, 0.0};
  const std::vector<double> negative{1.0, -0.5};
  EXPECT_THROW(DiscreteDistribution{empty}, CheckError);
  EXPECT_THROW(DiscreteDistribution{zeros}, CheckError);
  EXPECT_THROW(DiscreteDistribution{negative}, CheckError);
}

struct PmfCase {
  std::vector<double> weights;
};

class DiscreteDistributionPmf : public ::testing::TestWithParam<PmfCase> {};

TEST_P(DiscreteDistributionPmf, EmpiricalMatchesExact) {
  const auto& weights = GetParam().weights;
  DiscreteDistribution dist{weights};
  Pcg32 rng{99};
  std::vector<int> counts(weights.size(), 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) counts[dist.sample(rng)]++;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, dist.probability(i), 0.01)
        << "category " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pmfs, DiscreteDistributionPmf,
    ::testing::Values(PmfCase{{1.0}}, PmfCase{{0.55, 0.35, 0.10}},
                      PmfCase{{1.0, 1.0, 1.0, 1.0}},
                      PmfCase{{0.01, 0.99}},
                      PmfCase{{5.0, 0.0, 5.0}},
                      PmfCase{{1, 2, 3, 4, 5, 6, 7, 8}}));

TEST(DiscreteDistribution, ZeroWeightCategoryNeverSampled) {
  DiscreteDistribution dist{std::vector<double>{1.0, 0.0, 1.0}};
  Pcg32 rng{123};
  for (int i = 0; i < 20000; ++i) {
    EXPECT_NE(dist.sample(rng), 1U);
  }
}

}  // namespace
}  // namespace xres
