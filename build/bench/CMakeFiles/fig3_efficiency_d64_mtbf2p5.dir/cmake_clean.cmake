file(REMOVE_RECURSE
  "CMakeFiles/fig3_efficiency_d64_mtbf2p5.dir/fig3_efficiency_d64_mtbf2p5.cpp.o"
  "CMakeFiles/fig3_efficiency_d64_mtbf2p5.dir/fig3_efficiency_d64_mtbf2p5.cpp.o.d"
  "fig3_efficiency_d64_mtbf2p5"
  "fig3_efficiency_d64_mtbf2p5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_efficiency_d64_mtbf2p5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
