// Differential oracle test for the event-queue kernel.
//
// Drives ~1M randomized schedule/cancel/pop/pending operations against the
// real EventQueue and, in lockstep, a deliberately naive reference model (a
// std::map ordered by the contractual (time, insertion-seq) key). Every
// observable — pop order, fired ids/times/callbacks, cancel and pending
// return values, size, next_time — must match the model exactly. The op mix
// leans on the cases that broke heaps before: same-timestamp bursts (ties
// must break by insertion order), cancel-after-fire, stale handles, and
// cancel storms dense enough to trigger heap compaction.
//
// This test also runs under TSAN (tools/tier1.sh) to shake out undefined
// behavior in the slab/tag machinery.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace xres {
namespace {

TimePoint at(double s) { return TimePoint::at(Duration::seconds(s)); }

/// The contractual pop order: time, then insertion sequence.
using RefKey = std::pair<double, std::uint64_t>;

struct Oracle {
  std::map<RefKey, std::uint64_t> live;                 // key -> token
  std::unordered_map<std::uint64_t, RefKey> token_key;  // live tokens only
};

struct TrackedId {
  EventId id{};
  std::uint64_t token{0};
};

void run_ops(std::uint64_t seed, std::uint64_t ops) {
  Pcg32 rng{seed};
  EventQueue queue;
  Oracle oracle;
  std::vector<TrackedId> handles;  // includes fired/cancelled (stale) ids
  std::vector<std::uint64_t> fired_tokens;
  std::uint64_t next_token = 1;
  std::uint64_t next_seq = 0;

  const auto schedule_one = [&] {
    // Quantized times with decent probability of collision: same-timestamp
    // bursts must pop in insertion order.
    double t;
    if (rng.bernoulli(0.5)) {
      t = static_cast<double>(rng.uniform_int(0, 40));  // heavy ties
    } else {
      t = rng.next_double() * 1000.0;
    }
    const std::uint64_t token = next_token++;
    const EventId id =
        queue.schedule(at(t), [&fired_tokens, token] { fired_tokens.push_back(token); });
    const RefKey key{t, next_seq++};
    oracle.live.emplace(key, token);
    oracle.token_key.emplace(token, key);
    handles.push_back(TrackedId{id, token});
  };

  const auto pop_one = [&] {
    auto fired = queue.pop();
    if (oracle.live.empty()) {
      ASSERT_FALSE(fired.has_value());
      return;
    }
    ASSERT_TRUE(fired.has_value());
    const auto front = oracle.live.begin();
    EXPECT_EQ(fired->time, at(front->first.first));
    const std::uint64_t expect_token = front->second;
    const std::size_t before = fired_tokens.size();
    fired->callback();
    ASSERT_EQ(fired_tokens.size(), before + 1);
    EXPECT_EQ(fired_tokens.back(), expect_token);
    // The handle we recorded at schedule time must be the one that fired,
    // and it must be dead from here on.
    EXPECT_FALSE(queue.pending(fired->id));
    oracle.token_key.erase(expect_token);
    oracle.live.erase(front);
  };

  for (std::uint64_t op = 0; op < ops; ++op) {
    const std::uint32_t pick = rng.next_below(100);
    if (pick < 40) {
      schedule_one();
    } else if (pick < 55 && !handles.empty()) {
      // Cancel a random handle — possibly already fired or cancelled.
      const auto& h = handles[rng.next_below(static_cast<std::uint32_t>(handles.size()))];
      const bool ref_live = oracle.token_key.contains(h.token);
      EXPECT_EQ(queue.cancel(h.id), ref_live);
      if (ref_live) {
        oracle.live.erase(oracle.token_key.at(h.token));
        oracle.token_key.erase(h.token);
      }
      EXPECT_FALSE(queue.pending(h.id));
      EXPECT_FALSE(queue.cancel(h.id));  // second cancel always refused
    } else if (pick < 90) {
      pop_one();
    } else if (!handles.empty()) {
      const auto& h = handles[rng.next_below(static_cast<std::uint32_t>(handles.size()))];
      EXPECT_EQ(queue.pending(h.id), oracle.token_key.contains(h.token));
    }

    EXPECT_EQ(queue.size(), oracle.live.size());
    if ((op & 0xF) == 0) {
      if (oracle.live.empty()) {
        EXPECT_EQ(queue.next_time(), std::nullopt);
      } else {
        EXPECT_EQ(queue.next_time(), at(oracle.live.begin()->first.first));
      }
    }
    // Bound live-set growth (and with it, handle staleness) so the run
    // exercises deep queues without ballooning.
    if (oracle.live.size() > 20000) {
      while (oracle.live.size() > 10000) pop_one();
    }
    if (handles.size() > 60000) handles.erase(handles.begin(), handles.begin() + 30000);
    if (testing::Test::HasFatalFailure()) return;
  }

  // Drain and verify the full remaining order.
  while (!oracle.live.empty()) {
    pop_one();
    if (testing::Test::HasFatalFailure()) return;
  }
  EXPECT_EQ(queue.pop(), std::nullopt);
  EXPECT_TRUE(queue.empty());
}

TEST(SimOracle, MillionOpsMatchReferenceModel) {
  // 4 independent seeds x 250k ops = 1M operations against the model.
  for (const std::uint64_t seed : {11U, 22U, 33U, 44U}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    run_ops(seed, 250000);
    if (testing::Test::HasFatalFailure()) return;
  }
}

TEST(SimOracle, CancelStormsMatchReferenceModel) {
  // Alternating build-up and mass-cancel phases: most scheduled events die
  // before firing, driving the queue through repeated compactions while
  // the model checks the survivors' order.
  Pcg32 rng{99};
  EventQueue queue;
  Oracle oracle;
  std::vector<TrackedId> alive;
  std::vector<std::uint64_t> fired_tokens;
  std::uint64_t next_token = 1;
  std::uint64_t next_seq = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 2000; ++i) {
      const double t = static_cast<double>(rng.uniform_int(0, 500));
      const std::uint64_t token = next_token++;
      const EventId id =
          queue.schedule(at(t), [&fired_tokens, token] { fired_tokens.push_back(token); });
      oracle.live.emplace(RefKey{t, next_seq}, token);
      oracle.token_key.emplace(token, RefKey{t, next_seq});
      ++next_seq;
      alive.push_back(TrackedId{id, token});
    }
    // Cancel ~75% of everything still alive, newest first.
    for (std::size_t i = alive.size(); i-- > 0;) {
      if (!rng.bernoulli(0.75)) continue;
      const TrackedId h = alive[i];
      if (!oracle.token_key.contains(h.token)) continue;
      EXPECT_TRUE(queue.cancel(h.id));
      oracle.live.erase(oracle.token_key.at(h.token));
      oracle.token_key.erase(h.token);
    }
    // Pop half of the survivors; verify order against the model.
    for (std::size_t i = oracle.live.size() / 2; i-- > 0;) {
      auto fired = queue.pop();
      ASSERT_TRUE(fired.has_value());
      const auto front = oracle.live.begin();
      fired->callback();
      ASSERT_EQ(fired_tokens.back(), front->second);
      oracle.token_key.erase(front->second);
      oracle.live.erase(front);
    }
    ASSERT_EQ(queue.size(), oracle.live.size());
    alive.erase(alive.begin(),
                alive.begin() + static_cast<std::ptrdiff_t>(alive.size() / 2));
  }
  while (auto fired = queue.pop()) {
    const auto front = oracle.live.begin();
    ASSERT_NE(front, oracle.live.end());
    fired->callback();
    ASSERT_EQ(fired_tokens.back(), front->second);
    oracle.live.erase(front);
  }
  EXPECT_TRUE(oracle.live.empty());
}

}  // namespace
}  // namespace xres
