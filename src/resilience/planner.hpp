#pragma once

/// \file planner.hpp
/// Builds an ExecutionPlan for (technique, application, machine, config):
/// the concrete realization of the paper's Section-IV models.

#include "apps/application.hpp"
#include "platform/spec.hpp"
#include "resilience/config.hpp"
#include "resilience/plan.hpp"
#include "resilience/technique.hpp"

namespace xres {

/// Message-logging slowdown µ = 1 + comm_slowdown_per_tc × T_C (Section
/// IV-D; the paper's µ = 1 + T_C/10).
[[nodiscard]] double message_logging_slowdown(const AppType& type,
                                              const ResilienceConfig& config);

/// Physical nodes required at replication degree r: ⌈r · N_a⌉.
[[nodiscard]] std::uint32_t replicated_node_count(std::uint32_t app_nodes, double degree);

/// Per-node checkpoint image size: N_m scaled by the compression/
/// incremental-checkpointing factor (1.0 = the paper's full images).
[[nodiscard]] DataSize checkpoint_image(const AppSpec& app, const ResilienceConfig& config);

/// Build the execution plan. Always returns a structurally valid plan;
/// check `plan.feasible` before simulating (redundancy on more than
/// machine-capacity nodes is infeasible and must be scored as efficiency 0,
/// as in Figures 1–2).
[[nodiscard]] ExecutionPlan make_plan(TechniqueKind kind, const AppSpec& app,
                                      const MachineSpec& machine,
                                      const ResilienceConfig& config);

}  // namespace xres
