file(REMOVE_RECURSE
  "libxres_bench_common.a"
)
