#pragma once

/// \file runlog.hpp
/// Read/query side of the run ledger (obs/ledger.hpp writes it): tolerant
/// scanning of `results/ledger.jsonl`, plus the logic behind the
/// `xres log`, `xres show <run-id>` and `xres compare <a> <b>` verbs.
///
/// The loader mirrors ResumeIndex's corruption tolerance: a line whose
/// frame or CRC fails to verify (a torn tail from a SIGKILL'd run, or two
/// appenders racing before O_APPEND — which cannot actually interleave, but
/// belt and braces) is counted and skipped, never fatal.

#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/ledger.hpp"

namespace xres::study {

/// What the tolerant ledger scan observed.
struct LedgerScanStats {
  std::size_t valid_records{0};
  std::size_t corrupt_records{0};  ///< bad frame/CRC/JSON, skipped
  bool found{false};               ///< the ledger file existed
};

/// Load every valid record from \p path, in file (append) order.
[[nodiscard]] std::vector<obs::RunRecord> load_ledger(const std::string& path,
                                                      LedgerScanStats* stats = nullptr);

/// Parse one unframed ledger record JSON; throws recovery::JsonParseError
/// on malformed or non-ledger records.
[[nodiscard]] obs::RunRecord parse_run_record(const std::string& record_json);

/// git-describe-style build id of this checkout ("unknown" outside a git
/// repo). Cached after the first call; shared by ledger records and suite
/// manifests.
[[nodiscard]] const std::string& build_describe();

/// How two ledger records compare on their *deterministic* identity.
struct RunComparison {
  std::vector<std::string> drift;     ///< deterministic mismatches (fail)
  std::vector<std::string> warnings;  ///< wall-clock regressions (informational)
  [[nodiscard]] bool identical() const { return drift.empty(); }
};

/// Compare deterministic fields (study, params digest, seed, counters,
/// metrics/manifest CRCs) and flag wall-clock slowdowns beyond
/// \p slowdown_threshold (fractional: 0.25 = 25% slower).
[[nodiscard]] RunComparison compare_runs(const obs::RunRecord& a,
                                         const obs::RunRecord& b,
                                         double slowdown_threshold);

/// `xres log [--ledger PATH] [--study NAME] [--limit N]`: newest-last table
/// of recent runs. Returns an exit code.
int cmd_log(int argc, const char* const* argv);

/// `xres show <run-id> [--ledger PATH]`: the full record (exact id or
/// unique prefix). Returns an exit code.
int cmd_show(int argc, const char* const* argv);

/// `xres compare <run-a> <run-b> [--ledger PATH] [--threshold F]`: exit 0
/// when the deterministic fields match (wall-clock regressions are
/// warnings), 1 on drift.
int cmd_compare(int argc, const char* const* argv);

}  // namespace xres::study
