// Ablation: spatially correlated (burst) failures in the workload study.
// The paper assumes independent single-node failures; real machines also
// lose cabinets and power domains. This sweep keeps the event rate fixed
// and converts a growing fraction of events into contiguous-block bursts.

#include <cstdio>

#include "common.hpp"
#include "core/workload_study.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace xres;
  CliParser cli{"ablation_burst_failures — dropped %% vs correlated-failure mix"};
  cli.add_option("--patterns", "arrival patterns per cell", "15");
  cli.add_option("--burst-width", "nodes per burst (cabinet size)", "512");
  cli.add_option("--seed", "root RNG seed", "20170530");
  bench::add_obs_options(cli, /*with_trace=*/false);
  if (!cli.parse(argc, argv)) return 0;
  const auto patterns = static_cast<std::uint32_t>(cli.integer("--patterns"));
  const auto width = static_cast<std::uint32_t>(cli.integer("--burst-width"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("--seed"));
  const bench::ObsOptions obs_options = bench::read_obs_options(cli);
  obs::MetricSet merged;

  std::printf("Ablation: correlated failures (bursts of %u nodes), scheduler Slack\n\n",
              width);

  Table table{{"burst probability", "checkpoint-restart dropped %",
               "multilevel dropped %", "parallel-recovery dropped %"}};
  for (double probability : {0.0, 0.1, 0.3, 0.6}) {
    std::vector<std::string> row{fmt_percent(probability, 0)};
    for (TechniqueKind kind : workload_techniques()) {
      WorkloadStudyConfig study;
      study.patterns = patterns;
      study.seed = seed;
      RunningStats dropped;
      for (std::uint32_t p = 0; p < patterns; ++p) {
        const ArrivalPattern pattern = generate_pattern(study.workload, study.seed, p);
        WorkloadEngineConfig engine;
        engine.machine = study.machine;
        engine.resilience = study.resilience;
        engine.policy = TechniquePolicy::fixed_technique(kind);
        engine.scheduler = SchedulerKind::kSlack;
        engine.seed = derive_seed(study.seed, 0x656e67696eULL, p);
        engine.burst_probability = probability;
        engine.burst_width = width;
        obs::TrialObs run_obs;
        if (obs_options.metrics()) {
          run_obs.enable_metrics();
          engine.obs = &run_obs;
        }
        dropped.add(run_workload(engine, pattern).dropped_fraction);
        if (obs_options.metrics()) merged.merge(*run_obs.metrics());
      }
      row.push_back(fmt_double(dropped.mean() * 100.0, 2) + " ± " +
                    fmt_double(dropped.stddev() * 100.0, 2));
    }
    table.add_row(std::move(row));
    std::fprintf(stderr, "finished probability %.1f\n", probability);
  }
  std::printf("%s", table.to_text().c_str());
  if (obs_options.metrics()) {
    std::printf("\nInstrumented breakdown (whole sweep):\n%s",
                merged.to_table().to_text().c_str());
    merged.write_json(obs_options.metrics_path);
    std::printf("metrics written to %s\n", obs_options.metrics_path.c_str());
  }
  std::printf("(bursts multiply the per-event damage; severities are clamped to\n"
              " node-loss level, which multilevel absorbs with partner copies)\n");
  return 0;
}
