#include "study/platform_params.hpp"

#include "study/options.hpp"
#include "util/check.hpp"

namespace xres::study {

void add_platform_params(ParamSchema& schema) {
  if (schema.find(kPlatformModelKey) == nullptr) {
    schema.text(kPlatformModelKey,
                "platform data-movement model: flat (paper Eq. 3/5/6) | "
                "fattree (k-ary fat tree + queued PFS device, docs/PLATFORM.md)",
                "flat");
  }
  if (schema.find(kPlatformRadixKey) == nullptr) {
    schema.integer(kPlatformRadixKey, "fattree: nodes per leaf switch", 12).min(2);
  }
  if (schema.find(kPlatformTaperKey) == nullptr) {
    schema.real(kPlatformTaperKey,
                "fattree: per-level uplink taper in (0, 1]; 1 = full bisection", 1.0)
        .min(1e-6)
        .max(1.0);
  }
  if (schema.find(kPlatformPfsChannelsKey) == nullptr) {
    schema.integer(kPlatformPfsChannelsKey,
                   "fattree: PFS service channels; 0 = N_S", 0)
        .min(0);
  }
}

void materialize_platform(MachineSpec& machine, const ParamSet& params) {
  machine.platform.model = platform_model_from_string(params.str(kPlatformModelKey));
  machine.platform.fattree.leaf_radix = params.u32(kPlatformRadixKey);
  machine.platform.fattree.taper = params.real(kPlatformTaperKey);
  machine.platform.fattree.pfs_channels = params.u32(kPlatformPfsChannelsKey);
  // Spec-file / --set overrides can reach here without ever passing the
  // schema's range checks for *this* combination; the machine itself is
  // the final authority (its messages name the offending platform.* key).
  machine.validate();
}

void apply_platform_params(MachineSpec& machine, const ParamSet& params) {
  try {
    materialize_platform(machine, params);
  } catch (const CheckError& e) {
    usage_error_from(e);
  }
}

}  // namespace xres::study
