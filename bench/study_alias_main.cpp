// The entire main() of every per-figure executable: forward to the generic
// study driver. Each alias target compiles this file with XRES_STUDY_NAME
// set to its registered study, so `fig1_efficiency_a32 --trials 5` and
// `xres run fig1_efficiency_a32 --set trials=5` are the same code path.

#include "study/study_main.hpp"

#ifndef XRES_STUDY_NAME
#error "compile with -DXRES_STUDY_NAME=\"<registered study>\""
#endif

int main(int argc, char** argv) {
  return xres::study::study_main(XRES_STUDY_NAME, argc, argv);
}
