#include "runtime/power.hpp"

#include <algorithm>
#include <cstdio>

#include "util/check.hpp"

namespace xres {

void NodePowerSpec::validate() const {
  XRES_CHECK(active_watts > 0.0, "active power must be positive");
  XRES_CHECK(idle_watts >= 0.0, "idle power must be non-negative");
  XRES_CHECK(idle_watts <= active_watts, "idle power above active power");
}

EnergyReport execution_energy(const ExecutionResult& result,
                              std::uint32_t physical_nodes,
                              const NodePowerSpec& power) {
  power.validate();
  XRES_CHECK(physical_nodes > 0, "need at least one node");
  const double allocation_seconds =
      static_cast<double>(physical_nodes) * result.wall_time.to_seconds();
  EnergyReport report;
  report.active_node_seconds = std::min(result.node_seconds, allocation_seconds);
  report.idle_node_seconds = allocation_seconds - report.active_node_seconds;
  report.joules = report.active_node_seconds * power.active_watts +
                  report.idle_node_seconds * power.idle_watts;
  return report;
}

std::string EnergyReport::describe() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%.2f MWh (%.3e active + %.3e idle node-seconds)",
                kilowatt_hours() / 1000.0, active_node_seconds, idle_node_seconds);
  return buf;
}

}  // namespace xres
