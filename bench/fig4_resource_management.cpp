// Reproduces paper Figure 4: percentage of applications dropped for each
// resilience technique x resource management technique combination over 50
// shared arrival patterns on the oversubscribed exascale system, compared
// against the failure-free Ideal Baseline.

#include <cstdio>

#include "core/workload_study.hpp"
#include "obs/profile.hpp"
#include "study/context.hpp"
#include "study/platform_params.hpp"
#include "study/registry.hpp"

namespace {
using namespace xres;

int run(study::StudyContext& ctx) {
  const study::ObsOptions& obs = ctx.options().obs;

  obs::PhaseProfiler profiler;
  profiler.begin("setup");
  WorkloadStudyConfig config;
  config.patterns = ctx.params().u32("patterns");
  config.seed = ctx.seed();
  config.threads = ctx.threads();
  config.collect_metrics = obs.metrics();
  study::apply_platform_params(config.machine, ctx.params());

  study::RecoveryCoordinator& coordinator = ctx.recovery();
  config.recovery = coordinator.options();

  std::printf("Figure 4: dropped applications, oversubscribed exascale system\n");
  std::printf("machine: %s\n", config.machine.describe().c_str());
  std::printf(
      "workload: full initial fill + %u Poisson arrivals (mean gap %s); "
      "%u patterns; node MTBF %s\n\n",
      config.workload.arrival_count, to_string(config.workload.mean_interarrival).c_str(),
      config.patterns, to_string(config.resilience.node_mtbf).c_str());

  profiler.begin("run");
  obs::ProgressMeter meter{"pattern-run"};
  recovery::BatchReport report;
  const auto results =
      run_workload_study(config, figure4_combos(), meter.callback(), &report);
  coordinator.absorb(report);
  if (coordinator.interrupted()) return coordinator.finish();

  profiler.begin("reduce");
  const Table table = workload_results_table(results);
  std::printf("%s", table.to_text().c_str());
  ctx.emit_csv(table);

  if (obs.metrics()) {
    // Merge per-combo metrics in combo order: byte-identical for every
    // --threads value.
    obs::MetricSet merged;
    for (const WorkloadComboResult& r : results) {
      if (r.metrics.has_value()) merged.merge(*r.metrics);
    }
    std::printf("\nInstrumented breakdown (whole study):\n%s",
                merged.to_table().to_text().c_str());
    merged.write_json(obs.metrics_path);
    study::statusf("metrics written to %s\n", obs.metrics_path.c_str());
  }

  profiler.end();
  study::statusf("(dropped %% = applications missing their Eq.-1 deadline; "
                 "phases: %s)\n",
                 profiler.summary().c_str());
  return coordinator.finish();
}

study::StudyDefinition make() {
  study::StudyDefinition def;
  def.name = "fig4_resource_management";
  def.group = study::StudyGroup::kFigure;
  def.description =
      "paper Figure 4: dropped applications per (scheduler x technique) combination";
  def.summary =
      "fig4_resource_management — paper Figure 4: dropped applications per "
      "(scheduler x resilience technique) combination, 50 arrival patterns.";
  def.options.default_seed = 20170530;
  def.options.csv = true;
  def.options.obs = study::StudyOptionsSpec::Obs::kNoTrace;
  def.params.integer("patterns", "arrival patterns per combo (paper: 50)", 50).min(1);
  def.run = run;
  return def;
}

const study::Registration registered{make()};

}  // namespace
