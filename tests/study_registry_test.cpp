// Tests for the xres::study registry: the catalog is complete and
// well-formed, parameter schemas validate, and the generic study_main
// rejects bad invocations with the usage exit code.

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "study/options.hpp"
#include "study/registry.hpp"
#include "study/spec.hpp"
#include "study/study_main.hpp"
#include "study/sweep.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

namespace xres::study {
namespace {

TEST(StudyRegistry, CatalogIsEnumerableAndWellFormed) {
  const StudyRegistry& registry = StudyRegistry::instance();
  const std::vector<const StudyDefinition*> all = registry.all();
  EXPECT_GE(all.size(), 21u);
  EXPECT_EQ(all.size(), registry.size());

  std::set<std::string> names;
  for (const StudyDefinition* def : all) {
    ASSERT_NE(def, nullptr);
    EXPECT_FALSE(def->name.empty());
    EXPECT_TRUE(names.insert(def->name).second) << "duplicate name: " << def->name;
    EXPECT_FALSE(def->description.empty()) << def->name;
    EXPECT_TRUE(static_cast<bool>(def->run)) << def->name;
    EXPECT_EQ(registry.find(def->name), def);
  }
}

TEST(StudyRegistry, CatalogOrderedByGroupThenName) {
  const std::vector<const StudyDefinition*> all = StudyRegistry::instance().all();
  for (std::size_t i = 1; i < all.size(); ++i) {
    const StudyDefinition& a = *all[i - 1];
    const StudyDefinition& b = *all[i];
    const bool ordered =
        a.group < b.group || (a.group == b.group && a.name < b.name);
    EXPECT_TRUE(ordered) << a.name << " before " << b.name;
  }
}

TEST(StudyRegistry, PaperStudiesArePresent) {
  const StudyRegistry& registry = StudyRegistry::instance();
  for (const char* name :
       {"fig1_efficiency_a32", "fig2_efficiency_d64", "fig3_efficiency_d64_mtbf2p5",
        "fig4_resource_management", "fig5_resilience_selection", "table1_app_types",
        "table2_parameters", "efficiency", "workload"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
  EXPECT_EQ(registry.find("no_such_study"), nullptr);

  // The suite membership: every paper figure and table, nothing else.
  const auto suite =
      registry.group_members({StudyGroup::kFigure, StudyGroup::kTable});
  EXPECT_EQ(suite.size(), 7u);
}

TEST(StudyRegistry, JournalIdsKeepHistoricalIdentities) {
  const StudyRegistry& registry = StudyRegistry::instance();
  // Figure 1-3 journals are identified by their historical title strings so
  // pre-registry journals stay resumable.
  EXPECT_EQ(registry.find("fig1_efficiency_a32")->journal_study(),
            "Figure 1: efficiency vs. system share, application A32, MTBF 10 y");
  EXPECT_EQ(registry.find("fig2_efficiency_d64")->journal_study(),
            "Figure 2: efficiency vs. system share, application D64, MTBF 10 y");
  EXPECT_EQ(registry.find("fig3_efficiency_d64_mtbf2p5")->journal_study(),
            "Figure 3: efficiency vs. system share, application D64, MTBF 2.5 y");
  EXPECT_EQ(registry.find("efficiency")->journal_study(), "xres efficiency");
  EXPECT_EQ(registry.find("workload")->journal_study(), "xres workload");
  // Everything else journals under its own name.
  EXPECT_EQ(registry.find("ablation_severity_pmf")->journal_study(),
            "ablation_severity_pmf");
}

TEST(StudyRegistry, SchemaDefaultsParseThroughAccessors) {
  for (const StudyDefinition* def : StudyRegistry::instance().all()) {
    const ParamSet params{*def};
    EXPECT_EQ(params.values().size(), def->params.size()) << def->name;
    for (const ParamSpec& spec : def->params) {
      EXPECT_FALSE(spec.help.empty()) << def->name << " --" << spec.key;
      switch (spec.type) {
        case ParamSpec::Type::kInt:
          EXPECT_NO_THROW((void)params.integer(spec.key))
              << def->name << " --" << spec.key;
          break;
        case ParamSpec::Type::kReal:
          EXPECT_NO_THROW((void)params.real(spec.key))
              << def->name << " --" << spec.key;
          break;
        case ParamSpec::Type::kString:
          EXPECT_NO_THROW((void)params.str(spec.key))
              << def->name << " --" << spec.key;
          break;
      }
      // The default must satisfy the spec's own validation.
      EXPECT_NO_THROW(validate_param_value(spec, spec.default_value))
          << def->name << " --" << spec.key;
    }
  }
}

TEST(StudyRegistry, ParamBindingValidation) {
  const StudyDefinition* def = StudyRegistry::instance().find("fig1_efficiency_a32");
  ASSERT_NE(def, nullptr);
  ParamSet params{*def};

  EXPECT_NO_THROW(params.set("trials", "80"));
  EXPECT_EQ(params.u32("trials"), 80u);

  EXPECT_THROW(params.set("no_such_key", "1"), CheckError);
  EXPECT_THROW(params.set("trials", "bogus"), CheckError);
  EXPECT_THROW(params.set("trials", "0"), CheckError);  // below the minimum
}

TEST(StudyRegistry, CsvPathImpliesCsv) {
  const StudyDefinition* def = StudyRegistry::instance().find("fig1_efficiency_a32");
  ASSERT_NE(def, nullptr);
  CliParser cli{def->help_summary()};
  add_study_options(cli, *def);
  const char* argv[] = {"prog", "--csv-path", "/tmp/implied.csv"};
  ASSERT_TRUE(cli.parse(3, argv));
  const HarnessOptions options = read_harness_options(cli, *def);
  EXPECT_TRUE(options.csv);
  EXPECT_EQ(options.csv_path, "/tmp/implied.csv");
}

using StudyMainDeathTest = ::testing::Test;

TEST(StudyMainDeathTest, UnknownStudyReturnsOne) {
  const char* argv[] = {"prog"};
  EXPECT_EQ(study_main("no_such_study", 1, argv), 1);
}

TEST(StudyMainDeathTest, UnknownOptionExitsUsage) {
  // `xres run <study> --set nonexistent=5` lowers into exactly this argv, so
  // this is the unknown-`--set`-key exit path.
  const char* argv[] = {"prog", "--nonexistent=5"};
  EXPECT_EXIT(study_main("fig1_efficiency_a32", 2, argv),
              ::testing::ExitedWithCode(CliParser::kExitUsage),
              "unknown option");
}

TEST(StudyMainDeathTest, BadParamValueExitsUsage) {
  const char* argv[] = {"prog", "--trials=bogus"};
  EXPECT_EXIT(study_main("fig1_efficiency_a32", 2, argv),
              ::testing::ExitedWithCode(CliParser::kExitUsage), "trials");
}

TEST(StudyMainDeathTest, ResumeWithoutJournalExitsUsage) {
  const char* argv[] = {"prog", "--resume"};
  EXPECT_EXIT(study_main("fig1_efficiency_a32", 2, argv),
              ::testing::ExitedWithCode(CliParser::kExitUsage), "--resume");
}

// The exit-2 contract for `xres sweep`: every malformed invocation dies with
// the usage exit code and a one-line diagnostic naming the offending key.
using SweepMainDeathTest = ::testing::Test;

int sweep_argv(std::vector<const char*> args) {
  args.insert(args.begin(), "sweep");
  return sweep_main(static_cast<int>(args.size()), args.data());
}

TEST(SweepMainDeathTest, UnknownAxisExitsUsage) {
  EXPECT_EXIT(sweep_argv({"efficiency", "--axis", "bogus=1,2", "--out-dir", "/tmp/x"}),
              ::testing::ExitedWithCode(CliParser::kExitUsage),
              "unknown sweep axis 'bogus'");
}

TEST(SweepMainDeathTest, MalformedAxisExitsUsage) {
  EXPECT_EXIT(sweep_argv({"efficiency", "--axis", "noequals", "--out-dir", "/tmp/x"}),
              ::testing::ExitedWithCode(CliParser::kExitUsage), "malformed --axis");
}

TEST(SweepMainDeathTest, DuplicateAxisExitsUsage) {
  EXPECT_EXIT(sweep_argv({"efficiency", "--axis", "trials=1,2", "--axis",
                          "trials=4,8", "--out-dir", "/tmp/x"}),
              ::testing::ExitedWithCode(CliParser::kExitUsage),
              "duplicate axis 'trials'");
}

TEST(SweepMainDeathTest, OutOfRangeAxisValueExitsUsage) {
  EXPECT_EXIT(sweep_argv({"efficiency", "--axis", "trials=0", "--out-dir", "/tmp/x"}),
              ::testing::ExitedWithCode(CliParser::kExitUsage), "trials");
}

TEST(SweepMainDeathTest, MissingOutDirExitsUsage) {
  EXPECT_EXIT(sweep_argv({"efficiency", "--axis", "trials=1,2"}),
              ::testing::ExitedWithCode(CliParser::kExitUsage), "--out-dir");
}

TEST(SweepMainDeathTest, BadThreadsExitsUsage) {
  EXPECT_EXIT(sweep_argv({"efficiency", "--axis", "trials=1,2", "--out-dir",
                          "/tmp/x", "--threads", "zero"}),
              ::testing::ExitedWithCode(CliParser::kExitUsage), "--threads");
}

TEST(SweepMainDeathTest, UnknownStudyReturnsOne) {
  const char* argv[] = {"sweep", "no_such_study", "--axis", "trials=1",
                        "--out-dir", "/tmp/x"};
  EXPECT_EQ(sweep_main(6, argv), 1);
}

// The same contract for spec files: a bad spec dies with exit 2 and a
// diagnostic prefixed by the spec path.
using SpecLoadDeathTest = ::testing::Test;

std::string write_spec(const std::string& name, const std::string& content) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream{path, std::ios::binary} << content;
  return path;
}

TEST(SpecLoadDeathTest, MissingFileExitsUsage) {
  EXPECT_EXIT((void)load_study_from_file_or_exit("/tmp/spec_no_such_file.toml"),
              ::testing::ExitedWithCode(CliParser::kExitUsage), "cannot read");
}

TEST(SpecLoadDeathTest, MalformedTomlExitsUsageWithLine) {
  const std::string path = write_spec("spec_death_bad.toml", "[study\nname=1\n");
  EXPECT_EXIT((void)load_study_from_file_or_exit(path),
              ::testing::ExitedWithCode(CliParser::kExitUsage), "line 1");
}

TEST(SpecLoadDeathTest, UnknownBaseExitsUsage) {
  const std::string path = write_spec(
      "spec_death_base.toml", "[study]\nname = \"x\"\nbase = \"no_such_study\"\n");
  EXPECT_EXIT((void)load_study_from_file_or_exit(path),
              ::testing::ExitedWithCode(CliParser::kExitUsage),
              "unknown base study 'no_such_study'");
}

TEST(SpecLoadDeathTest, UnknownParamExitsUsage) {
  const std::string path = write_spec(
      "spec_death_param.toml",
      "[study]\nname = \"x\"\nbase = \"efficiency\"\n[params]\nbogus = 1\n");
  EXPECT_EXIT((void)load_study_from_file_or_exit(path),
              ::testing::ExitedWithCode(CliParser::kExitUsage),
              "unknown parameter 'bogus'");
}

TEST(SpecLoadDeathTest, OutOfRangeParamExitsUsage) {
  const std::string path = write_spec(
      "spec_death_range.toml",
      "[study]\nname = \"x\"\nbase = \"efficiency\"\n[params]\ntrials = 0\n");
  EXPECT_EXIT((void)load_study_from_file_or_exit(path),
              ::testing::ExitedWithCode(CliParser::kExitUsage), "trials");
}

}  // namespace
}  // namespace xres::study
