#pragma once

/// \file registry.hpp
/// The study registry: every paper figure, table, ablation and extension
/// experiment is registered here as data — a `StudyDefinition` with a name,
/// a group, a one-line description, a typed parameter schema and a run
/// function — instead of owning its own `main()`. One generic harness
/// (study_main.hpp) then serves every scenario: the per-figure bench
/// binaries, `xres run <study>`, `xres list`, `xres describe` and
/// `xres suite paper` all enumerate or execute the same definitions.
///
/// Definitions are *data*, so they need not be compiled in: the spec loader
/// (spec.hpp) constructs a StudyDefinition at runtime from a TOML/JSON spec
/// file, and the sweep planner (sweep.hpp) fans one definition across a
/// parameter grid. All three producers share the same typed value API:
/// `ParamSchema` declares the parameters (key, type, help, default, range),
/// `ParamSet` holds validated bindings for one run.
///
/// Registration is link-time: each study translation unit plants a
/// `Registration` object whose constructor inserts the definition into the
/// global registry. The study TUs are compiled into the `xres_studies`
/// object library so every consumer (bench aliases, CLI, tests) links the
/// full catalog.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace xres::study {

class StudyContext;

/// Which part of the paper reproduction a study belongs to. Groups order
/// the catalog (`xres list`) and select the suite members (`xres suite
/// paper` runs kFigure + kTable).
enum class StudyGroup {
  kFigure,     ///< paper Figures 1-5
  kTable,      ///< paper Tables I-II
  kAblation,   ///< sensitivity sweeps over modeling assumptions
  kExtension,  ///< experiments beyond the paper (energy, paired, ...)
  kAdhoc,      ///< parameterized exploration surfaces (xres efficiency/workload)
};

[[nodiscard]] const char* to_string(StudyGroup group);

/// One entry of a study's typed parameter schema. Parameters surface as
/// regular CLI options (`--trials 80`) on the per-study binaries, as
/// `--set trials=80` bindings on `xres run`, as `[params]` entries in a
/// spec file, and as `--axis trials=20,40,80` sweep axes.
struct ParamSpec {
  enum class Type { kInt, kReal, kString };

  std::string key;   ///< bare name, no dashes ("trials")
  std::string help;  ///< one line for --help / xres describe
  Type type{Type::kInt};
  std::string default_value;
  /// Inclusive numeric range (kInt/kReal only); unset bound = unbounded.
  std::optional<double> min_value;
  std::optional<double> max_value;

  /// Range chaining for ParamSchema's builder methods:
  ///   schema.integer("trials", "trials per bar", 200).min(1);
  ParamSpec& min(double bound) {
    min_value = bound;
    return *this;
  }
  ParamSpec& max(double bound) {
    max_value = bound;
    return *this;
  }

  /// Human-readable type name ("int", "real", "string").
  [[nodiscard]] const char* type_name() const;
  /// nullopt when \p name is not a type name — the inverse of type_name().
  [[nodiscard]] static std::optional<Type> type_from_name(const std::string& name);
  /// Render the range as "[min, max]" / "[min, ...]" / "" for describe.
  [[nodiscard]] std::string range_text() const;
};

/// Render \p v the way schema defaults and range bounds are documented
/// ("%g": "2.5", "0.001", "10").
[[nodiscard]] std::string format_real(double v);

/// A study's ordered, typed parameter declarations. The one schema object
/// serves every producer and consumer: compiled-in registrations build it
/// with the typed methods below, the spec loader parses it back from the
/// JSON `xres describe --json` emits, CLI parsers mint options from it,
/// and sweep axes validate against it.
class ParamSchema {
 public:
  ParamSchema() = default;

  /// Declare a parameter; the returned reference allows range chaining
  /// (`schema.integer("trials", "...", 200).min(1)`). Throws CheckError on
  /// a duplicate or malformed key.
  ParamSpec& integer(std::string key, std::string help, std::int64_t default_value);
  ParamSpec& real(std::string key, std::string help, double default_value);
  ParamSpec& text(std::string key, std::string help, std::string default_value);

  /// Add a fully-formed spec (the spec-loader path). Same key validation.
  ParamSpec& add(ParamSpec spec);

  /// Re-bind a declared parameter's default — how a spec file's `[params]`
  /// table turns into new schema defaults that `--set`/`--axis` can still
  /// override. Throws CheckError on an unknown key or an invalid value.
  void set_default(const std::string& key, const std::string& value);

  /// nullptr when \p key is not declared.
  [[nodiscard]] const ParamSpec* find(const std::string& key) const;

  /// Throws CheckError when \p value is not a valid binding for \p key
  /// (unknown key, type mismatch, out of range).
  void validate(const std::string& key, const std::string& value) const;

  [[nodiscard]] bool empty() const { return specs_.empty(); }
  [[nodiscard]] std::size_t size() const { return specs_.size(); }
  [[nodiscard]] const std::vector<ParamSpec>& specs() const { return specs_; }
  [[nodiscard]] std::vector<ParamSpec>::const_iterator begin() const {
    return specs_.begin();
  }
  [[nodiscard]] std::vector<ParamSpec>::const_iterator end() const {
    return specs_.end();
  }

 private:
  std::vector<ParamSpec> specs_;
};

/// Which pieces of the shared harness surface a study exposes. The flags
/// reproduce exactly the option set each pre-registry driver declared, so
/// every historical invocation keeps working.
struct StudyOptionsSpec {
  bool seed{true};  ///< --seed (default below)
  std::uint64_t default_seed{20170529};
  bool threads{true};  ///< --threads (studies with a serial sweep omit it)
  bool csv{false};     ///< --csv / --csv-path
  bool chart{false};   ///< --chart ASCII bars
  bool report{false};  ///< --report markdown artifact
  enum class Obs {
    kNone,       ///< no observability flags (static tables)
    kWithTrace,  ///< --metrics / --trace / --log-level
    kNoTrace,    ///< --metrics / --log-level (concurrent-workload studies)
  } obs{Obs::kWithTrace};
  bool recovery{true};  ///< --journal/--resume/--trial-timeout/--trial-retries
};

/// One scenario — registered at link time or materialized at runtime from a
/// spec file (spec.hpp); the harness treats both identically.
struct StudyDefinition {
  std::string name;  ///< unique, the bench binary name ("fig1_efficiency_a32")
  StudyGroup group{StudyGroup::kAblation};
  std::string description;  ///< one line for the catalog
  /// --help header; empty → "<name> — <description>".
  std::string summary;
  /// Identifies this study's write-ahead journals (recovery::JournalMeta);
  /// empty → name. Figure 1-3 keep their historical title strings.
  std::string journal_id;
  StudyOptionsSpec options;
  ParamSchema params;
  /// The experiment body. Receives parsed params + harness options +
  /// lazily-constructed obs/recovery plumbing; returns the process exit
  /// code (0, or recovery::kExitInterrupted after a drained shutdown).
  std::function<int(StudyContext&)> run;

  [[nodiscard]] const ParamSpec* find_param(const std::string& key) const {
    return params.find(key);
  }
  [[nodiscard]] std::string help_summary() const;
  [[nodiscard]] const std::string& journal_study() const {
    return journal_id.empty() ? name : journal_id;
  }
};

/// Validated key→value bindings for one run of a schema, defaulted from the
/// schema. Accessors parse on read (like CliParser) — validate() has
/// already guaranteed they succeed.
class ParamSet {
 public:
  ParamSet() = default;
  /// Schema defaults for \p def (kept alive by the registry or, for a
  /// runtime definition, by the caller for this set's lifetime).
  explicit ParamSet(const StudyDefinition& def);
  /// Schema defaults for a bare schema; \p owner names the study in error
  /// messages.
  ParamSet(const ParamSchema& schema, std::string owner);

  /// Bind \p key to \p value. Throws CheckError on unknown key, a value
  /// that does not parse as the declared type, or one outside the range.
  void set(const std::string& key, const std::string& value);

  [[nodiscard]] std::int64_t integer(const std::string& key) const;
  [[nodiscard]] std::uint32_t u32(const std::string& key) const;
  [[nodiscard]] double real(const std::string& key) const;
  [[nodiscard]] std::string str(const std::string& key) const;

  [[nodiscard]] const std::map<std::string, std::string>& values() const {
    return values_;
  }

  /// The bound schema (null for a default-constructed set).
  [[nodiscard]] const ParamSchema* schema() const { return schema_; }

 private:
  const ParamSchema* schema_{nullptr};
  std::string owner_;
  std::map<std::string, std::string> values_;
};

/// Throws CheckError when \p value is not a valid binding for \p spec.
void validate_param_value(const ParamSpec& spec, const std::string& value);

/// The global study catalog.
class StudyRegistry {
 public:
  /// The singleton, with the built-in adhoc studies (efficiency, workload)
  /// registered on first use.
  [[nodiscard]] static StudyRegistry& instance();

  /// Register a study. Throws CheckError on a duplicate name, an empty
  /// description, a missing run function, or an invalid schema default.
  void add(StudyDefinition def);

  /// nullptr when unknown.
  [[nodiscard]] const StudyDefinition* find(const std::string& name) const;

  /// Every study, ordered by (group, name) — the catalog/suite order.
  [[nodiscard]] std::vector<const StudyDefinition*> all() const;

  /// The (group, name)-ordered subset belonging to \p groups.
  [[nodiscard]] std::vector<const StudyDefinition*> group_members(
      const std::vector<StudyGroup>& groups) const;

  [[nodiscard]] std::size_t size() const { return studies_.size(); }

 private:
  StudyRegistry() = default;
  std::vector<std::unique_ptr<StudyDefinition>> studies_;
};

/// Plant one of these at namespace scope to register a study at link time:
///   namespace { const study::Registration registered{make_definition()}; }
struct Registration {
  explicit Registration(StudyDefinition def);
};

}  // namespace xres::study
