#pragma once

/// \file cli.hpp
/// Tiny command-line option parser for the bench harnesses and examples.
/// Supports `--key value`, `--key=value` and boolean flags `--flag`, plus
/// self-documenting `--help` output. Unknown options are an error so typos
/// in sweep parameters cannot silently run the wrong experiment.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace xres {

/// Declarative option set + parsed values.
class CliParser {
 public:
  /// \p program_summary is printed at the top of --help.
  explicit CliParser(std::string program_summary);

  /// Declare options before parse(). \p key includes the dashes ("--trials").
  void add_flag(const std::string& key, const std::string& help);
  void add_option(const std::string& key, const std::string& help,
                  const std::string& default_value);

  /// Parse argv. Returns false if --help was requested (help text already
  /// printed to stdout); throws CheckError on unknown/malformed options.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  /// True when \p key was declared via add_flag/add_option (lets shared
  /// option readers cope with harnesses that register a subset).
  [[nodiscard]] bool has_option(const std::string& key) const;

  [[nodiscard]] bool flag(const std::string& key) const;
  [[nodiscard]] std::string str(const std::string& key) const;
  [[nodiscard]] std::int64_t integer(const std::string& key) const;
  [[nodiscard]] double real(const std::string& key) const;

  [[nodiscard]] std::string help_text() const;

 private:
  struct Option {
    std::string key;
    std::string help;
    std::string value;
    bool is_flag{false};
    bool flag_set{false};
  };

  Option* find(const std::string& key);
  const Option& get(const std::string& key) const;

  std::string summary_;
  std::vector<Option> options_;
};

}  // namespace xres
