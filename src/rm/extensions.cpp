#include <algorithm>

#include "rm/scheduler.hpp"

namespace xres {

void FirstFitScheduler::map(const std::vector<const Job*>& pending,
                            SchedulerContext& ctx, Pcg32& /*rng*/) {
  // Arrival order with greedy backfilling: every pending job gets one
  // attempt regardless of earlier misfits.
  for (const Job* job : pending) {
    ctx.try_start(*job);
  }
}

void SjfScheduler::map(const std::vector<const Job*>& pending, SchedulerContext& ctx,
                       Pcg32& /*rng*/) {
  std::vector<const Job*> order = pending;
  std::stable_sort(order.begin(), order.end(), [](const Job* a, const Job* b) {
    return a->spec.baseline_time() < b->spec.baseline_time();
  });
  for (const Job* job : order) {
    ctx.try_start(*job);
  }
}

}  // namespace xres
