#pragma once

/// \file harness.hpp
/// The live harness plumbing a study run owns: crash-safety coordination
/// (journal/resume/watchdog/shutdown), observed batch execution, and the
/// crash-safe pattern loop for hand-rolled sweeps. Moved here from
/// bench/common.cpp so the bench binaries, the xres CLI and the suite
/// runner share exactly one copy.

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/single_app_study.hpp"
#include "core/workload_record.hpp"
#include "obs/trial_obs.hpp"
#include "recovery/journal.hpp"
#include "recovery/options.hpp"
#include "recovery/shutdown.hpp"
#include "study/options.hpp"

namespace xres::study {

/// Owns the live crash-safety state for one study run: loads the resume
/// index (validating the journal against the study name and seed), opens
/// the write-ahead journal, installs the SIGINT/SIGTERM handlers, and
/// accumulates the executor's BatchReport. Construct after parsing, pass
/// options() into the study config, call finish() last and return its exit
/// code.
class RecoveryCoordinator {
 public:
  /// \p study and \p root_seed identify the journal (recovery::JournalMeta).
  /// Without --resume an existing journal file at --journal is replaced,
  /// not appended to (appending would resurrect the previous run's records
  /// on a later --resume). Load reports (found/corrupt/torn-tail) print to
  /// the status stream.
  RecoveryCoordinator(const RecoveryCliOptions& cli, std::string study,
                      std::uint64_t root_seed);

  /// The executor-facing view (pointers into this coordinator; valid for
  /// its lifetime).
  [[nodiscard]] recovery::TrialRecoveryOptions options();

  /// Merge one study/batch report into the run's total.
  void absorb(const recovery::BatchReport& report) { report_.merge(report); }
  [[nodiscard]] const recovery::BatchReport& report() const { return report_; }

  /// True when the run drained early on SIGINT/SIGTERM — the driver should
  /// skip writing figure artifacts and return finish().
  [[nodiscard]] bool interrupted() const { return report_.interrupted; }

  /// Flush the journal, print the recovery summary (when anything was
  /// active), and return the driver exit code: recovery::kExitInterrupted
  /// after a drain, else 0.
  [[nodiscard]] int finish();

 private:
  RecoveryCliOptions cli_;
  std::optional<recovery::ResumeIndex> index_;
  std::unique_ptr<recovery::TrialJournal> journal_;
  recovery::BatchReport report_;
};

/// Observed batch execution for drivers that drive TrialExecutor directly
/// (the ablation/extension harnesses): a drop-in replacement for
/// `executor.run_batch` that, when observation is requested, attaches one
/// observer per trial, merges metrics in spec order, and keeps trial 0 of
/// each batch as a trace track named \p label. Call finish() once after
/// the sweep to write the artifacts.
class ObsCollector {
 public:
  explicit ObsCollector(ObsOptions options) : options_{std::move(options)} {}

  [[nodiscard]] std::vector<ExecutionResult> run_batch(
      const TrialExecutor& executor, std::uint64_t root_seed,
      std::span<const TrialSpec> specs, const std::string& label,
      const TrialProgress& progress = {});

  /// run_batch under a RecoveryCoordinator: \p label doubles as the journal
  /// batch label (keep it stable across runs), and the batch's accounting
  /// is absorbed into \p coordinator.
  [[nodiscard]] std::vector<ExecutionResult> run_batch(
      const TrialExecutor& executor, std::uint64_t root_seed,
      std::span<const TrialSpec> specs, const std::string& label,
      RecoveryCoordinator& coordinator, const TrialProgress& progress = {});

  /// Merged metrics so far (null until the first observed batch).
  [[nodiscard]] const obs::MetricSet* metrics() const {
    return metrics_.has_value() ? &*metrics_ : nullptr;
  }

  /// Write the requested artifacts (prints the instrumented breakdown to
  /// stdout; "written to" notices go to the status stream).
  void finish();

 private:
  ObsOptions options_;
  std::optional<obs::MetricSet> metrics_;
  obs::TraceLog trace_;
};

/// Crash-safe pattern loop for the workload ablations that hand-build their
/// `WorkloadEngineConfig`s (burst failures, PFS contention): runs `run(p)`
/// for each pattern index in [0, patterns) under the coordinator's
/// journal/resume/watchdog envelope, journaling each outcome under
/// (\p label, p) — fingerprinted by (root_seed, label, p) — and restoring
/// journaled outcomes on --resume. After the loop, `consume(p, outcome)` is
/// invoked serially in pattern order (deterministic merges), or not at all
/// when the loop drained on a shutdown signal — check
/// `coordinator.interrupted()` afterwards. \p label must be stable across
/// runs and unique within the driver (e.g. "variant/technique").
void run_patterns_controlled(
    RecoveryCoordinator& coordinator, const TrialExecutor& executor,
    const std::string& label, std::uint32_t patterns, std::uint64_t root_seed,
    const std::function<WorkloadOutcome(std::uint32_t)>& run,
    const std::function<void(std::uint32_t, const WorkloadOutcome&)>& consume);

}  // namespace xres::study
