#include "core/executor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "core/trial_engine.hpp"
#include "failure/process.hpp"
#include "failure/replay.hpp"
#include "failure/severity.hpp"
#include "recovery/journal.hpp"
#include "recovery/json_parse.hpp"
#include "recovery/shutdown.hpp"
#include "recovery/trial_record.hpp"
#include "obs/perf.hpp"
#include "resilience/planner.hpp"
#include "runtime/app_runtime.hpp"
#include "sim/simulation.hpp"
#include "util/check.hpp"
#include "util/deadline.hpp"

namespace xres {

namespace {

ExecutionResult infeasible_result(const ExecutionPlan& plan, obs::TrialObs* obs) {
  ExecutionResult result;
  result.completed = false;
  result.baseline = plan.baseline;
  result.efficiency = 0.0;
  if (obs != nullptr) {
    const obs::BuiltinMetrics& m = obs::builtin_metrics();
    obs->count(m.trials_run);
    obs->count(m.trials_infeasible);
  }
  return result;
}

/// Attempt number of the trial currently executing on this thread; set by
/// for_each_controlled's retry loop so run_batch's journal body can record
/// how many tries an outcome took without widening the body signature.
thread_local unsigned t_current_attempt = 1;

/// Process-wide persistent worker pool shared by every TrialExecutor batch.
/// Workers are spawned on demand, parked on a condition variable between
/// batches and reused, so a study that calls run_batch per cell pays the
/// thread spawn/join cost once per process instead of once per cell — and
/// per-worker thread_local caches (plans, severity models) survive across
/// batches. Determinism is unaffected: the pool changes only which OS
/// threads run the same atomic-handout loop, and result slots are indexed.
class WorkerPool {
 public:
  static WorkerPool& instance() {
    static WorkerPool pool;
    return pool;
  }

  /// Invoke `fn` once on each of \p workers pool threads and block until
  /// every invocation returns. `fn` must be a drain-until-empty loop over
  /// shared state; a nested call from inside a pool worker (a trial body
  /// that itself fans out) degrades to one serial pass on the calling
  /// thread, which such a loop completes by construction.
  void run(std::size_t workers, const std::function<void()>& fn) {
    if (workers == 0) return;
    if (t_pool_worker) {
      fn();
      return;
    }
    std::unique_lock<std::mutex> lock{mutex_};
    while (threads_.size() < workers) {
      threads_.emplace_back([this] { worker_loop(); });
    }
    job_ = &fn;
    starts_left_ = workers;
    finishes_left_ = workers;
    ++epoch_;
    work_cv_.notify_all();
    done_cv_.wait(lock, [&] { return finishes_left_ == 0; });
    job_ = nullptr;
  }

 private:
  WorkerPool() = default;

  ~WorkerPool() {
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  void worker_loop() {
    t_pool_worker = true;
    std::unique_lock<std::mutex> lock{mutex_};
    std::uint64_t seen = 0;
    for (;;) {
      work_cv_.wait(lock,
                    [&] { return stop_ || (epoch_ != seen && starts_left_ > 0); });
      if (stop_) return;
      seen = epoch_;
      --starts_left_;
      const std::function<void()>* job = job_;
      lock.unlock();
      (*job)();
      lock.lock();
      if (--finishes_left_ == 0) done_cv_.notify_all();
    }
  }

  static thread_local bool t_pool_worker;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  /// Batch state under mutex_: the current job, how many workers still need
  /// to pick it up, and how many have yet to finish it. run() returns only
  /// when finishes_left_ hits zero, so batches never overlap.
  const std::function<void()>* job_{nullptr};
  std::size_t starts_left_{0};
  std::size_t finishes_left_{0};
  std::uint64_t epoch_{0};
  bool stop_{false};
};

thread_local bool WorkerPool::t_pool_worker = false;

}  // namespace

std::uint64_t TrialSpec::derived_seed(std::uint64_t root) const {
  if (seed_keys.empty()) return root;
  std::vector<std::uint64_t> keys;
  keys.reserve(seed_keys.size() + 1);
  keys.push_back(root);
  keys.insert(keys.end(), seed_keys.begin(), seed_keys.end());
  return hash_seed(keys);
}

ExecutionResult run_trial(const PlanTrialSpec& spec, std::uint64_t seed,
                          obs::TrialObs* obs) {
  if (!spec.plan.feasible) return infeasible_result(spec.plan, obs);

  const SeverityModel& severity =
      cached_severity_model(spec.resilience.severity_weights);
  if (trial_engine() == TrialEngine::kDirect) {
    return run_plan_trial_direct(spec.plan, severity, spec.failure_distribution,
                                 seed, obs);
  }

  Simulation sim;
  ExecutionResult final_result;
  bool finished = false;

  ResilientAppRuntime runtime{
      sim, spec.plan, derive_seed(seed, 0x72756e74696dULL), [&](const ExecutionResult& r) {
        final_result = r;
        finished = true;
        sim.request_stop();
      }};
  runtime.set_observer(obs);

  AppFailureProcess failures{
      sim,
      spec.plan.failure_rate,
      severity,
      spec.failure_distribution,
      Pcg32{derive_seed(seed, 0x6661696c7321ULL)},
      [&runtime](const Failure& f) { runtime.on_failure(f); }};

  failures.start();
  runtime.start();
  sim.run();

  XRES_CHECK(finished, "plan trial ended without a completion callback");
  record_trial_metrics(obs, final_result, sim.events_processed());
  return final_result;
}

ExecutionResult run_trial(const TraceTrialSpec& spec, std::uint64_t seed,
                          obs::TrialObs* obs) {
  // Severity is already baked into the trace; spec.resilience is kept for
  // API symmetry and future runtime knobs.
  if (!spec.plan.feasible) return infeasible_result(spec.plan, obs);

  if (trial_engine() == TrialEngine::kDirect) {
    return run_trace_trial_direct(spec.plan, spec.trace, seed, obs);
  }

  Simulation sim;
  ExecutionResult final_result;
  bool finished = false;

  ResilientAppRuntime runtime{
      sim, spec.plan, derive_seed(seed, 0x72756e74696dULL), [&](const ExecutionResult& r) {
        final_result = r;
        finished = true;
        sim.request_stop();
      }};
  runtime.set_observer(obs);

  TraceFailureProcess failures{sim, spec.trace,
                               [&runtime](const Failure& f) { runtime.on_failure(f); }};
  failures.start();
  runtime.start();
  sim.run();

  XRES_CHECK(finished, "trace trial ended without a completion callback");
  record_trial_metrics(obs, final_result, sim.events_processed());
  return final_result;
}

ExecutionResult run_trial(const SingleAppTrialConfig& config, std::uint64_t seed,
                          obs::TrialObs* obs) {
  // The plan cache makes the planner (the multilevel optimizer especially)
  // a once-per-worker-per-cell cost instead of a per-trial one.
  const ExecutionPlan& plan = cached_plan(config);
  if (!plan.feasible) return infeasible_result(plan, obs);

  const SeverityModel& severity =
      cached_severity_model(config.resilience.severity_weights);
  if (trial_engine() == TrialEngine::kDirect) {
    return run_plan_trial_direct(plan, severity, config.failure_distribution,
                                 seed, obs);
  }

  PlanTrialSpec spec;
  spec.plan = plan;
  spec.resilience = config.resilience;
  spec.failure_distribution = config.failure_distribution;
  return run_trial(spec, seed, obs);
}

ExecutionResult run_trial(const TrialSpec& spec, std::uint64_t root_seed,
                          obs::TrialObs* obs) {
  const std::uint64_t seed = spec.derived_seed(root_seed);
  return std::visit([seed, obs](const auto& work) { return run_trial(work, seed, obs); },
                    spec.work);
}

namespace {

/// Seeds for a whole batch, derived once up front: derived_seed allocates a
/// key vector per call, which the batched loops should not repay per trial
/// (the journal path reads each seed up to three times).
std::vector<std::uint64_t> derive_batch_seeds(std::uint64_t root,
                                              std::span<const TrialSpec> specs) {
  std::vector<std::uint64_t> seeds(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    seeds[i] = specs[i].derived_seed(root);
  }
  return seeds;
}

ExecutionResult run_trial_work(const TrialWork& work, std::uint64_t seed,
                               obs::TrialObs* obs) {
  return std::visit([seed, obs](const auto& w) { return run_trial(w, seed, obs); },
                    work);
}

}  // namespace

TrialExecutor::TrialExecutor(unsigned threads) : threads_{threads} {
  if (threads_ == 0) threads_ = std::thread::hardware_concurrency();
  if (threads_ == 0) threads_ = 1;
}

void TrialExecutor::for_each(std::size_t count,
                             const std::function<void(std::size_t)>& body,
                             const TrialProgress& progress) const {
  TrialLoopControl control;
  control.progress = progress;
  // Plain loops ignore shutdown signals: their callers reduce the full
  // result vector unconditionally, so draining early would hand them
  // default-constructed slots.
  control.drain_on_shutdown = false;
  for_each_controlled(count, body, control, nullptr);
}

void TrialExecutor::for_each_controlled(std::size_t count,
                                        const std::function<void(std::size_t)>& body,
                                        const TrialLoopControl& control,
                                        recovery::BatchReport* report) const {
  if (count == 0) return;
  XRES_CHECK(static_cast<bool>(body), "for_each_controlled needs a body");

  const unsigned attempts = std::max(1U, control.trial_attempts);
  std::atomic<std::size_t> executed{0};
  std::atomic<std::size_t> resumed{0};
  std::atomic<std::size_t> retried{0};
  std::atomic<std::size_t> quarantined{0};
  std::atomic<bool> interrupted{false};
  std::mutex quarantine_mutex;

  // One unit through the whole envelope: resume skip, then up to `attempts`
  // tries under the watchdog deadline, then quarantine (or, unhooked, the
  // historical propagate-and-fail-the-batch path). Only std::exception is
  // retryable; anything else is a bug and escapes immediately.
  auto run_unit = [&](std::size_t i) {
    if (control.already_done && control.already_done(i)) {
      resumed.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    for (unsigned attempt = 1;; ++attempt) {
      try {
        const ScopedDeadline deadline{control.trial_timeout_seconds};
        t_current_attempt = attempt;
        body(i);
        executed.fetch_add(1, std::memory_order_relaxed);
        return;
      } catch (const std::exception& e) {
        if (attempt < attempts) {
          retried.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (!control.quarantine) throw;
        {
          const std::lock_guard<std::mutex> lock{quarantine_mutex};
          control.quarantine(i, e.what());
        }
        quarantined.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::exception_ptr error;
  const std::size_t workers = std::min<std::size_t>(threads_, count);
  if (workers <= 1) {
    std::size_t done = 0;
    for (std::size_t i = 0; i < count; ++i) {
      if (control.drain_on_shutdown && recovery::shutdown_requested()) {
        interrupted.store(true, std::memory_order_relaxed);
        break;
      }
      try {
        run_unit(i);
      } catch (...) {
        error = std::current_exception();
        break;
      }
      if (control.progress) control.progress(++done, count);
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::size_t done = 0;
    std::mutex progress_mutex;

    auto worker = [&] {
      for (;;) {
        if (failed.load(std::memory_order_relaxed)) return;
        if (control.drain_on_shutdown && recovery::shutdown_requested()) {
          interrupted.store(true, std::memory_order_relaxed);
          return;
        }
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          run_unit(i);
        } catch (...) {
          {
            const std::lock_guard<std::mutex> lock{error_mutex};
            if (!error) error = std::current_exception();
          }
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        if (control.progress) {
          const std::lock_guard<std::mutex> lock{progress_mutex};
          control.progress(++done, count);
        }
      }
    };

    WorkerPool::instance().run(workers, worker);
  }

  if (report != nullptr) {
    report->executed += executed.load(std::memory_order_relaxed);
    report->resumed += resumed.load(std::memory_order_relaxed);
    report->retried += retried.load(std::memory_order_relaxed);
    report->quarantined += quarantined.load(std::memory_order_relaxed);
    report->interrupted =
        report->interrupted || interrupted.load(std::memory_order_relaxed);
  }
  // One flush per batch into the process-global telemetry (obs/perf.hpp):
  // the per-unit accounting above already paid for these atomics.
  obs::perf_add_trials(executed.load(std::memory_order_relaxed),
                       resumed.load(std::memory_order_relaxed),
                       retried.load(std::memory_order_relaxed),
                       quarantined.load(std::memory_order_relaxed));
  if (error) std::rethrow_exception(error);
}

std::vector<ExecutionResult> TrialExecutor::run_batch(
    std::uint64_t root_seed, std::span<const TrialSpec> specs,
    const TrialProgress& progress) const {
  const std::vector<std::uint64_t> seeds = derive_batch_seeds(root_seed, specs);
  std::vector<ExecutionResult> results(specs.size());
  for_each(
      specs.size(),
      [&](std::size_t i) { results[i] = run_trial_work(specs[i].work, seeds[i], nullptr); },
      progress);
  return results;
}

std::vector<ExecutionResult> TrialExecutor::run_batch(
    std::uint64_t root_seed, std::span<const TrialSpec> specs,
    std::span<obs::TrialObs> observers, const TrialProgress& progress) const {
  XRES_CHECK(observers.size() == specs.size(),
             "one observer per spec (enable channels before the batch)");
  const std::vector<std::uint64_t> seeds = derive_batch_seeds(root_seed, specs);
  std::vector<ExecutionResult> results(specs.size());
  for_each(
      specs.size(),
      [&](std::size_t i) {
        results[i] = run_trial_work(specs[i].work, seeds[i], &observers[i]);
      },
      progress);
  return results;
}

std::vector<ExecutionResult> TrialExecutor::run_batch(
    std::uint64_t root_seed, std::span<const TrialSpec> specs,
    std::span<obs::TrialObs> observers, const recovery::TrialRecoveryOptions& rec,
    const std::string& batch_label, recovery::BatchReport* report,
    const TrialProgress& progress) const {
  const bool observed = !observers.empty();
  XRES_CHECK(!observed || observers.size() == specs.size(),
             "one observer per spec, or no observers at all");

  const std::vector<std::uint64_t> seeds = derive_batch_seeds(root_seed, specs);
  std::vector<ExecutionResult> results(specs.size());
  std::atomic<std::size_t> stale{0};

  TrialLoopControl control;
  control.progress = progress;
  control.trial_timeout_seconds = rec.trial_timeout_seconds;
  control.trial_attempts = rec.trial_attempts;
  control.drain_on_shutdown = rec.drain_on_shutdown;

  if (rec.resume != nullptr) {
    control.already_done = [&](std::size_t i) {
      const recovery::JournalRecord* record = rec.resume->find(batch_label, i);
      if (record == nullptr) return false;
      if (record->seed != seeds[i]) {
        // The sweep changed under the journal; re-running is the only safe
        // answer.
        stale.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      // Trace-collecting trials always re-run: the simulation is
      // deterministic, so re-running rebuilds the identical trace, and
      // journaling event buffers would dwarf the results they describe.
      if (observed && observers[i].trace() != nullptr) return false;
      recovery::TrialOutcome outcome;
      try {
        outcome = recovery::parse_trial_outcome(record->payload);
      } catch (const recovery::JsonParseError&) {
        stale.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      if (observed && observers[i].metrics() != nullptr) {
        // Journaled without metrics (an unobserved earlier run) but needed
        // now: re-run rather than hand back a hole in the merge.
        if (!outcome.metrics.has_value()) return false;
        *observers[i].metrics() = *outcome.metrics;
      }
      results[i] = outcome.result;
      return true;
    };
  }

  auto journal_outcome = [&](std::size_t i, recovery::TrialOutcome outcome) {
    recovery::JournalRecord record;
    record.batch = batch_label;
    record.index = i;
    record.seed = seeds[i];
    record.payload = recovery::serialize_trial_outcome(outcome);
    rec.journal->append(record);
  };

  // Re-arm a trial's enabled observer channels so every attempt starts from
  // a clean slate instead of double-counting a failed predecessor.
  auto reset_observer = [&](std::size_t i) {
    if (!observed) return;
    if (observers[i].metrics() != nullptr) observers[i].enable_metrics();
    if (observers[i].trace() != nullptr) observers[i].enable_trace();
  };

  auto body = [&](std::size_t i) {
    obs::TrialObs* obs = nullptr;
    if (observed) {
      reset_observer(i);
      obs = &observers[i];
    }
    const auto start = std::chrono::steady_clock::now();
    results[i] = run_trial_work(specs[i].work, seeds[i], obs);
    if (rec.journal != nullptr) {
      recovery::TrialOutcome outcome;
      outcome.result = results[i];
      if (obs != nullptr && obs->metrics() != nullptr) outcome.metrics = *obs->metrics();
      outcome.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      outcome.attempts = t_current_attempt;
      journal_outcome(i, std::move(outcome));
    }
  };

  if (rec.quarantine_enabled()) {
    control.quarantine = [&](std::size_t i, const std::string& reason) {
      // Same shape as an infeasible plan: present but worthless, so the
      // study's reductions stay well-defined.
      ExecutionResult placeholder;
      placeholder.completed = false;
      placeholder.efficiency = 0.0;
      results[i] = placeholder;
      reset_observer(i);
      if (rec.journal != nullptr) {
        recovery::TrialOutcome outcome;
        outcome.result = placeholder;
        outcome.quarantined = true;
        outcome.quarantine_reason = reason;
        outcome.attempts = std::max(1U, rec.trial_attempts);
        if (observed && observers[i].metrics() != nullptr) {
          outcome.metrics.emplace();  // clean zero set, matching the reset
        }
        journal_outcome(i, std::move(outcome));
      }
    };
  }

  for_each_controlled(specs.size(), body, control, report);
  if (report != nullptr) {
    report->stale_records += stale.load(std::memory_order_relaxed);
  }
  return results;
}

}  // namespace xres
