# Empty compiler generated dependencies file for fig1_efficiency_a32.
# This may be replaced when dependencies are built.
