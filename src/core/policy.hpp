#pragma once

/// \file policy.hpp
/// How the workload engine assigns a resilience technique to each arriving
/// application: a fixed technique (Figure 4), per-application Resilience
/// Selection (Figure 5), or the failure-free Ideal Baseline.

#include <string>

#include "resilience/technique.hpp"

namespace xres {

struct TechniquePolicy {
  enum class Mode { kIdealBaseline, kFixed, kSelection };

  Mode mode{Mode::kFixed};
  TechniqueKind fixed{TechniqueKind::kCheckpointRestart};

  [[nodiscard]] static TechniquePolicy ideal_baseline() {
    return TechniquePolicy{Mode::kIdealBaseline, TechniqueKind::kNone};
  }
  [[nodiscard]] static TechniquePolicy fixed_technique(TechniqueKind kind) {
    return TechniquePolicy{Mode::kFixed, kind};
  }
  [[nodiscard]] static TechniquePolicy selection() {
    return TechniquePolicy{Mode::kSelection, TechniqueKind::kNone};
  }

  [[nodiscard]] std::string name() const;
};

}  // namespace xres
