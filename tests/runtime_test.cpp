// Scenario tests for ResilientAppRuntime: hand-crafted plans with
// deterministic failure injections and exact expected timelines.

#include <gtest/gtest.h>

#include "runtime/app_runtime.hpp"
#include "sim/simulation.hpp"
#include "util/check.hpp"

namespace xres {
namespace {

/// A minimal single-level plan: 100 s of work, checkpoint every 10 s of
/// work at a cost of 2 s, restore 3 s.
ExecutionPlan tiny_plan() {
  ExecutionPlan plan;
  plan.kind = TechniqueKind::kCheckpointRestart;
  plan.app = AppSpec{app_type_by_name("A32"), 10, 100};
  plan.physical_nodes = 10;
  plan.baseline = Duration::seconds(100.0);
  plan.work_target = Duration::seconds(100.0);
  plan.checkpoint_quantum = Duration::seconds(10.0);
  plan.levels = {CheckpointLevelSpec{Duration::seconds(2.0), Duration::seconds(3.0), 3}};
  plan.nesting = {1};
  plan.failure_rate = Rate::zero();
  return plan;
}

struct Harness {
  Simulation sim;
  ExecutionResult result;
  bool finished{false};

  std::unique_ptr<ResilientAppRuntime> make(ExecutionPlan plan, std::uint64_t seed = 1) {
    return std::make_unique<ResilientAppRuntime>(
        sim, std::move(plan), seed, [this](const ExecutionResult& r) {
          result = r;
          finished = true;
        });
  }

  void inject_at(ResilientAppRuntime& rt, double seconds, SeverityLevel severity = 1) {
    sim.schedule_at(TimePoint::at(Duration::seconds(seconds)), [&rt, severity, this] {
      rt.on_failure(Failure{sim.now(), severity});
    });
  }
};

TEST(Runtime, FailureFreeTimelineIsExact) {
  // 10 segments of 10 s; checkpoints after segments 1..9 (the run completes
  // at the 10th boundary without checkpointing): 100 + 9×2 = 118 s.
  Harness h;
  auto rt = h.make(tiny_plan());
  rt->start();
  h.sim.run();
  ASSERT_TRUE(h.finished);
  EXPECT_TRUE(h.result.completed);
  EXPECT_DOUBLE_EQ(h.result.wall_time.to_seconds(), 118.0);
  EXPECT_EQ(h.result.checkpoints_completed, 9U);
  EXPECT_DOUBLE_EQ(h.result.time_working.to_seconds(), 100.0);
  EXPECT_DOUBLE_EQ(h.result.time_checkpointing.to_seconds(), 18.0);
  EXPECT_DOUBLE_EQ(h.result.efficiency, 100.0 / 118.0);
  EXPECT_EQ(h.result.failures_seen, 0U);
  // Energy: 10 nodes busy for the whole 118 s.
  EXPECT_DOUBLE_EQ(h.result.node_seconds, 1180.0);
}

TEST(Runtime, NoneplanRunsAtFullEfficiency) {
  Harness h;
  ExecutionPlan plan = tiny_plan();
  plan.kind = TechniqueKind::kNone;
  plan.levels.clear();
  plan.nesting.clear();
  plan.checkpoint_quantum = Duration::infinity();
  auto rt = h.make(std::move(plan));
  rt->start();
  h.sim.run();
  ASSERT_TRUE(h.finished);
  EXPECT_DOUBLE_EQ(h.result.wall_time.to_seconds(), 100.0);
  EXPECT_DOUBLE_EQ(h.result.efficiency, 1.0);
  EXPECT_EQ(h.result.checkpoints_completed, 0U);
}

TEST(Runtime, FailureDuringWorkRollsBackToLastCheckpoint) {
  // Timeline: w10 c2 (t=12), w10 c2 (t=24), failure at t=25 with progress
  // 21 -> roll back to 20, restart 3 s (t=28), redo 1 s + finish.
  // Total = 118 + 1 (lost work) + 3 (restart) = 122 s.
  Harness h;
  auto rt = h.make(tiny_plan());
  h.inject_at(*rt, 25.0);
  rt->start();
  h.sim.run();
  ASSERT_TRUE(h.finished);
  EXPECT_TRUE(h.result.completed);
  EXPECT_DOUBLE_EQ(h.result.wall_time.to_seconds(), 122.0);
  EXPECT_EQ(h.result.failures_seen, 1U);
  EXPECT_EQ(h.result.rollbacks, 1U);
  EXPECT_DOUBLE_EQ(h.result.rework.to_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(h.result.time_restarting.to_seconds(), 3.0);
  // The lost second is worked twice.
  EXPECT_DOUBLE_EQ(h.result.time_working.to_seconds(), 101.0);
}

TEST(Runtime, FailureDuringCheckpointInvalidatesIt) {
  // The first checkpoint runs t=10..12. A failure at t=11 invalidates it:
  // progress 10 is NOT saved; roll back to 0, restart 3 s (t=14), redo the
  // full 118 s timeline. Wall = 14 + 118 = 132 s.
  Harness h;
  auto rt = h.make(tiny_plan());
  h.inject_at(*rt, 11.0);
  rt->start();
  h.sim.run();
  ASSERT_TRUE(h.finished);
  EXPECT_DOUBLE_EQ(h.result.wall_time.to_seconds(), 132.0);
  EXPECT_EQ(h.result.rollbacks, 1U);
  EXPECT_DOUBLE_EQ(h.result.rework.to_seconds(), 10.0);
  EXPECT_EQ(h.result.checkpoints_completed, 9U);
}

TEST(Runtime, FailureDuringRestartRestartsTheRestart) {
  // First failure at t=25 -> restart until t=28. Second failure at t=26
  // interrupts the restart: roll back again (no extra progress lost) and
  // restart anew: 26 + 3 = 29, then 1 s redo + remaining timeline.
  // Wall = 122 + 1 (failed restart second attempt offset) = 123 s.
  Harness h;
  auto rt = h.make(tiny_plan());
  h.inject_at(*rt, 25.0);
  h.inject_at(*rt, 26.0);
  rt->start();
  h.sim.run();
  ASSERT_TRUE(h.finished);
  EXPECT_DOUBLE_EQ(h.result.wall_time.to_seconds(), 123.0);
  EXPECT_EQ(h.result.rollbacks, 2U);
  EXPECT_DOUBLE_EQ(h.result.rework.to_seconds(), 1.0);  // only lost once
  EXPECT_DOUBLE_EQ(h.result.time_restarting.to_seconds(), 4.0);  // 1 aborted + 3 full
}

TEST(Runtime, MultilevelSeverityChoosesRecoveryLevel) {
  // Two levels: L1 (cov 1, save 1, restore 1) and L2 (cov 2, save 5,
  // restore 5), nesting {2,1}: checkpoints at progress 10 (L1), 20 (L2),
  // 30 (L1), ...
  ExecutionPlan plan = tiny_plan();
  plan.kind = TechniqueKind::kMultilevel;
  plan.levels = {CheckpointLevelSpec{Duration::seconds(1.0), Duration::seconds(1.0), 1},
                 CheckpointLevelSpec{Duration::seconds(5.0), Duration::seconds(5.0), 2}};
  plan.nesting = {2, 1};

  {
    // Severity-1 failure at t=15 (progress 14, after the L1 checkpoint at
    // 10): recovers from L1 at progress 10 with a 1 s restore.
    Harness h;
    auto rt = h.make(plan);
    h.inject_at(*rt, 15.0, 1);
    rt->start();
    h.sim.run();
    ASSERT_TRUE(h.finished);
    EXPECT_DOUBLE_EQ(h.result.rework.to_seconds(), 4.0);
    EXPECT_DOUBLE_EQ(h.result.time_restarting.to_seconds(), 1.0);
  }
  {
    // Severity-2 failure at t=15: the only completed checkpoint is L1,
    // which cannot recover severity 2 -> restart from scratch via L2
    // restore (5 s) with 14 s of rework.
    Harness h;
    auto rt = h.make(plan);
    h.inject_at(*rt, 15.0, 2);
    rt->start();
    h.sim.run();
    ASSERT_TRUE(h.finished);
    EXPECT_DOUBLE_EQ(h.result.rework.to_seconds(), 14.0);
    EXPECT_DOUBLE_EQ(h.result.time_restarting.to_seconds(), 5.0);
  }
  {
    // Severity-2 failure at t=28 (progress 25; L2 completed at progress 20
    // by t=17? timeline: w10 c1 t=11, w10 c5 t=26, fail at t=28 with
    // progress 22): recovers from L2 at progress 20.
    Harness h;
    auto rt = h.make(plan);
    h.inject_at(*rt, 28.0, 2);
    rt->start();
    h.sim.run();
    ASSERT_TRUE(h.finished);
    EXPECT_DOUBLE_EQ(h.result.rework.to_seconds(), 2.0);
    EXPECT_DOUBLE_EQ(h.result.time_restarting.to_seconds(), 5.0);
  }
}

TEST(Runtime, ParallelRecoveryRetainsProgress) {
  // PR plan: restore 3 s, parallelism 2. Failure at t=25 (progress 21,
  // saved 20): recovery = 3 + 1/2 = 3.5 s; progress stays 21.
  // Wall = 118 + 3.5 = 121.5 s.
  ExecutionPlan plan = tiny_plan();
  plan.kind = TechniqueKind::kParallelRecovery;
  plan.rollback_on_failure = false;
  plan.recovery_parallelism = 2.0;
  Harness h;
  auto rt = h.make(std::move(plan));
  h.inject_at(*rt, 25.0);
  rt->start();
  h.sim.run();
  ASSERT_TRUE(h.finished);
  EXPECT_TRUE(h.result.completed);
  EXPECT_DOUBLE_EQ(h.result.wall_time.to_seconds(), 121.5);
  EXPECT_EQ(h.result.rollbacks, 0U);
  EXPECT_DOUBLE_EQ(h.result.rework.to_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(h.result.time_recovering.to_seconds(), 3.5);
  EXPECT_DOUBLE_EQ(h.result.time_working.to_seconds(), 100.0);
  // Energy: 10 nodes for 118 s + 3 active nodes (1 + P) for 3.5 s.
  EXPECT_DOUBLE_EQ(h.result.node_seconds, 1180.0 + 3.0 * 3.5);
}

TEST(Runtime, ParallelRecoveryInterruptedCheckpointIsRetaken) {
  // Failure at t=11 (inside the first checkpoint, t=10..12): PR does not
  // roll back; lost = 10 - 0 = 10 since nothing is saved yet. Recovery =
  // 3 + 10/2 = 8 s (t=19), then the checkpoint is retaken (2 s, t=21),
  // then the remaining 90 s of work + 8 more checkpoints × 2 s.
  // Wall = 21 + 90 + 16 = 127 s.
  ExecutionPlan plan = tiny_plan();
  plan.kind = TechniqueKind::kParallelRecovery;
  plan.rollback_on_failure = false;
  plan.recovery_parallelism = 2.0;
  Harness h;
  auto rt = h.make(std::move(plan));
  h.inject_at(*rt, 11.0);
  rt->start();
  h.sim.run();
  ASSERT_TRUE(h.finished);
  EXPECT_DOUBLE_EQ(h.result.wall_time.to_seconds(), 127.0);
  EXPECT_EQ(h.result.checkpoints_completed, 9U);
}

TEST(Runtime, RedundancyMasksFirstReplicaFailure) {
  // One virtual process, two physical nodes (r = 2): the first failure is
  // always masked (both replicas healthy), the second before any
  // checkpoint exhausts the pair and forces a restart.
  ExecutionPlan plan = tiny_plan();
  plan.kind = TechniqueKind::kRedundancyFull;
  plan.app.nodes = 1;
  plan.physical_nodes = 2;
  plan.replication_degree = 2.0;

  {
    Harness h;
    auto rt = h.make(plan);
    h.inject_at(*rt, 5.0);
    rt->start();
    h.sim.run();
    ASSERT_TRUE(h.finished);
    // Masked: no delay at all.
    EXPECT_DOUBLE_EQ(h.result.wall_time.to_seconds(), 118.0);
    EXPECT_EQ(h.result.failures_seen, 1U);
    EXPECT_EQ(h.result.failures_masked, 1U);
    EXPECT_EQ(h.result.rollbacks, 0U);
  }
  {
    Harness h;
    auto rt = h.make(plan);
    h.inject_at(*rt, 5.0);
    h.inject_at(*rt, 7.0);  // second hit on the surviving replica: fatal
    rt->start();
    h.sim.run();
    ASSERT_TRUE(h.finished);
    EXPECT_EQ(h.result.failures_masked, 1U);
    EXPECT_EQ(h.result.rollbacks, 1U);
    // Lost 7 s of work + 3 s restart.
    EXPECT_DOUBLE_EQ(h.result.wall_time.to_seconds(), 128.0);
  }
  {
    // A completed checkpoint heals the degraded pair: failures at t=5 and
    // t=15 (after the checkpoint at t=12) are both masked.
    Harness h;
    auto rt = h.make(plan);
    h.inject_at(*rt, 5.0);
    h.inject_at(*rt, 15.0);
    rt->start();
    h.sim.run();
    ASSERT_TRUE(h.finished);
    EXPECT_EQ(h.result.failures_masked, 2U);
    EXPECT_EQ(h.result.rollbacks, 0U);
    EXPECT_DOUBLE_EQ(h.result.wall_time.to_seconds(), 118.0);
  }
}

TEST(Runtime, WallTimeCapAborts) {
  ExecutionPlan plan = tiny_plan();
  plan.max_wall_time = Duration::seconds(50.0);
  Harness h;
  auto rt = h.make(std::move(plan));
  rt->start();
  // Stall the run by hammering it with failures that each cost more than
  // they allow progress.
  for (double t = 5.0; t < 200.0; t += 4.0) h.inject_at(*rt, t);
  h.sim.run();
  ASSERT_TRUE(h.finished);
  EXPECT_FALSE(h.result.completed);
  EXPECT_DOUBLE_EQ(h.result.efficiency, 0.0);
  EXPECT_DOUBLE_EQ(h.result.wall_time.to_seconds(), 50.0);
  EXPECT_EQ(rt->phase(), ResilientAppRuntime::Phase::kAborted);
}

TEST(Runtime, ExternalAbortStopsSilently) {
  Harness h;
  auto rt = h.make(tiny_plan());
  rt->start();
  h.sim.schedule_at(TimePoint::at(Duration::seconds(30.0)), [&] { rt->abort(); });
  h.sim.run();
  EXPECT_FALSE(h.finished);  // no completion callback on external abort
  EXPECT_EQ(rt->phase(), ResilientAppRuntime::Phase::kAborted);
  EXPECT_FALSE(rt->result().completed);
}

TEST(Runtime, FailuresAfterCompletionAreIgnored) {
  Harness h;
  auto rt = h.make(tiny_plan());
  rt->start();
  h.sim.run();
  ASSERT_TRUE(h.finished);
  const ExecutionResult before = rt->result();
  rt->on_failure(Failure{h.sim.now(), 1});
  EXPECT_EQ(rt->result().failures_seen, before.failures_seen);
}

TEST(Runtime, ProgressFractionAndPhaseNames) {
  Harness h;
  auto rt = h.make(tiny_plan());
  EXPECT_STREQ(rt->phase_name(), "idle");
  rt->start();
  EXPECT_STREQ(rt->phase_name(), "working");
  h.sim.run_until(TimePoint::at(Duration::seconds(12.0)));
  EXPECT_NEAR(rt->progress_fraction(), 0.1, 1e-12);
  h.sim.run();
  EXPECT_STREQ(rt->phase_name(), "done");
  EXPECT_DOUBLE_EQ(rt->progress_fraction(), 1.0);
}

TEST(Runtime, StartTwiceThrows) {
  Harness h;
  auto rt = h.make(tiny_plan());
  rt->start();
  EXPECT_THROW(rt->start(), CheckError);
}

TEST(Runtime, InfeasiblePlanRefusesToStart) {
  ExecutionPlan plan = tiny_plan();
  plan.feasible = false;
  Harness h;
  auto rt = h.make(std::move(plan));
  EXPECT_THROW(rt->start(), CheckError);
}

}  // namespace
}  // namespace xres
