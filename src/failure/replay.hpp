#pragma once

/// \file replay.hpp
/// Replay a pre-generated FailureTrace into a simulation.
///
/// Replay enables *paired* comparisons: executing every resilience
/// technique against byte-identical failure sequences removes the
/// between-trial failure-sampling variance from the comparison, so
/// technique deltas resolve with far fewer trials (common random numbers).

#include <functional>

#include "failure/process.hpp"
#include "failure/trace.hpp"
#include "sim/simulation.hpp"

namespace xres {

class TraceFailureProcess {
 public:
  using Callback = std::function<void(const Failure&)>;

  /// Failures before the current simulation time are skipped (with a
  /// warning counted in skipped()); the rest are delivered at their
  /// recorded times. The trace must outlive this object.
  TraceFailureProcess(Simulation& sim, const FailureTrace& trace, Callback on_failure);

  TraceFailureProcess(const TraceFailureProcess&) = delete;
  TraceFailureProcess& operator=(const TraceFailureProcess&) = delete;
  ~TraceFailureProcess();

  /// Schedule all deliveries.
  void start();

  /// Cancel all not-yet-delivered failures.
  void stop();

  [[nodiscard]] std::size_t delivered() const { return delivered_; }
  [[nodiscard]] std::size_t skipped() const { return skipped_; }

 private:
  Simulation& sim_;
  const FailureTrace& trace_;
  Callback on_failure_;
  std::vector<EventId> pending_;
  bool active_{false};
  std::size_t delivered_{0};
  std::size_t skipped_{0};
};

}  // namespace xres
