#include "apps/swf.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace xres {

namespace {

/// Table-I candidates under the import bias (mirrors workload.cpp).
std::vector<AppType> candidate_types(WorkloadBias bias) {
  std::vector<AppType> types;
  for (const AppType& t : all_app_types()) {
    switch (bias) {
      case WorkloadBias::kUnbiased:
      case WorkloadBias::kLargeApps:  // size bias does not apply to imports
        types.push_back(t);
        break;
      case WorkloadBias::kHighMemory:
        if (t.memory_per_node >= DataSize::gigabytes(64.0)) types.push_back(t);
        break;
      case WorkloadBias::kHighCommunication:
        if (t.comm_fraction > 0.25) types.push_back(t);
        break;
    }
  }
  XRES_CHECK(!types.empty(), "bias produced an empty type set");
  return types;
}

}  // namespace

ArrivalPattern import_swf(const std::string& swf_text, const SwfImportConfig& config,
                          SwfImportStats* stats) {
  XRES_CHECK(config.node_scale > 0.0, "node scale must be positive");
  XRES_CHECK(config.machine_nodes > 0, "machine must have nodes");

  Pcg32 rng{derive_seed(config.seed, 0x737766ULL)};
  const std::vector<AppType> types = candidate_types(config.bias);

  SwfImportStats local;
  ArrivalPattern pattern;
  std::uint64_t next_id = 1;

  std::istringstream in{swf_text};
  std::string line;
  while (std::getline(in, line)) {
    ++local.lines_total;
    // Strip leading whitespace; skip blanks and ';' comments.
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) {
      ++local.comments;
      continue;
    }
    if (line[first] == ';') {
      ++local.comments;
      continue;
    }

    std::istringstream fields{line};
    long long job_number = 0;
    double submit = 0.0;
    double wait = 0.0;
    double run_time = 0.0;
    double processors = 0.0;
    XRES_CHECK(static_cast<bool>(fields >> job_number >> submit >> wait >> run_time >>
                                 processors),
               "malformed SWF record: " + line);

    // -1 marks unknown; cancelled jobs have non-positive run time.
    if (run_time <= 0.0 || processors <= 0.0 || submit < 0.0) {
      ++local.skipped_invalid;
      continue;
    }

    const double scaled = processors * config.node_scale;
    const auto nodes = static_cast<std::uint32_t>(std::clamp(
        std::llround(std::max(scaled, 1.0)), 1LL,
        static_cast<long long>(config.machine_nodes)));
    // Round the run time up to whole time steps (>= 1 minute).
    const auto steps = static_cast<std::uint64_t>(
        std::max(1.0, std::ceil(run_time / time_step_length().to_seconds())));

    Job job;
    job.id = JobId{next_id++};
    job.spec.type = types[static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint32_t>(types.size())))];
    job.spec.nodes = nodes;
    job.spec.time_steps = steps;
    job.spec.validate();
    job.arrival = TimePoint::at(Duration::seconds(submit));
    job.deadline = assign_deadline(job.arrival, job.spec.baseline_time(), rng);
    pattern.jobs.push_back(std::move(job));
    ++local.imported;
    if (config.max_jobs != 0 && local.imported >= config.max_jobs) break;
  }

  // SWF logs are submit-time ordered by convention, but do not rely on it.
  std::stable_sort(pattern.jobs.begin(), pattern.jobs.end(),
                   [](const Job& a, const Job& b) { return a.arrival < b.arrival; });
  if (stats != nullptr) *stats = local;
  return pattern;
}

ArrivalPattern load_swf(const std::string& path, const SwfImportConfig& config,
                        SwfImportStats* stats) {
  std::ifstream f{path};
  XRES_CHECK(f.good(), "cannot open SWF file: " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return import_swf(buf.str(), config, stats);
}

}  // namespace xres
