#include "apps/application.hpp"

#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace xres {

AppSpec AppSpec::from_baseline(AppType type, std::uint32_t nodes, Duration baseline) {
  const double steps = baseline / time_step_length();
  const double rounded = std::round(steps);
  XRES_CHECK(std::abs(steps - rounded) < 1e-9,
             "baseline must be a whole number of time steps");
  AppSpec spec{type, nodes, static_cast<std::uint64_t>(rounded)};
  spec.validate();
  return spec;
}

void AppSpec::validate() const {
  XRES_CHECK(nodes > 0, "application needs at least one node");
  XRES_CHECK(time_steps > 0, "application needs at least one time step");
  XRES_CHECK(type.comm_fraction >= 0.0 && type.comm_fraction < 1.0,
             "communication fraction must be in [0, 1)");
  XRES_CHECK(type.memory_per_node > DataSize::zero(), "per-node memory must be positive");
}

std::string AppSpec::describe() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "%s x %u nodes, %s", type.name.c_str(), nodes,
                to_string(baseline_time()).c_str());
  return buf;
}

TimePoint assign_deadline(TimePoint arrival, Duration baseline, Pcg32& rng) {
  XRES_CHECK(baseline > Duration::zero(), "baseline time must be positive");
  const double slack_factor = rng.uniform(1.2, 2.0);
  return arrival + baseline * slack_factor;
}

}  // namespace xres
